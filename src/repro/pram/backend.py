"""Execution backends for the data-parallel inner steps.

The per-round hot path of every marking algorithm is two bulk operations:

1. ``bernoulli(n, p)`` — draw n independent marks, and
2. ``edge_mark_counts(incidence, marked)`` — per-edge count of marked
   vertices (a sparse matvec).

Both are embarrassingly parallel.  :class:`SerialBackend` runs them with
NumPy in-process; :class:`ProcessBackend` fans them out over a
:class:`repro.exec.pool.WorkerPool` (the shared process-pool wrapper the
campaign executor also uses), which is the honest way to get CPU
parallelism in CPython (the GIL rules out shared-memory threading for this
workload — see DESIGN.md §2).  Determinism is preserved under any worker
count: the random stream is chunked by a fixed ``chunk_size`` derived from
*n*, not by the number of workers.  Backends hold worker processes — use
them as context managers or call ``close()``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.exec.pool import WorkerPool
from repro.obs import metrics as obs_metrics
from repro.util.rng import SeedLike, spawn_seeds

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "deterministic_equivalence",
]


def _bernoulli_chunk(args: tuple[np.random.SeedSequence, int, float]) -> np.ndarray:
    seed, n, p = args
    return np.random.default_rng(seed).random(n) < p


def _matvec_chunk(args: tuple[sp.csr_matrix, np.ndarray]) -> np.ndarray:
    chunk, marked = args
    return chunk @ marked


class ExecutionBackend:
    """Interface for the bulk per-round operations."""

    def bernoulli(self, seed: SeedLike, n: int, p: float) -> np.ndarray:
        """n independent Bernoulli(p) draws as a boolean mask."""
        raise NotImplementedError

    def edge_mark_counts(self, incidence: sp.csr_matrix, marked: np.ndarray) -> np.ndarray:
        """Per-edge number of marked vertices (len = number of edges)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process NumPy execution (the default).

    Draws follow the same fixed-chunk seeding discipline as
    :class:`ProcessBackend`, so for equal ``chunk_size`` the two backends
    produce bit-identical marks from the same seed — parallel execution
    never changes results.
    """

    def __init__(self, chunk_size: int = 1 << 16):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive: {chunk_size}")
        self.chunk_size = chunk_size

    def bernoulli(self, seed: SeedLike, n: int, p: float) -> np.ndarray:  # noqa: D102
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability out of range: {p}")
        obs_metrics.inc("backend/bernoulli_calls")
        obs_metrics.inc("backend/bernoulli_draws", n)
        if n == 0:
            return np.zeros(0, dtype=bool)
        chunks = [
            min(self.chunk_size, n - start) for start in range(0, n, self.chunk_size)
        ]
        seeds = spawn_seeds(seed, len(chunks))
        parts = [_bernoulli_chunk((s, c, p)) for s, c in zip(seeds, chunks)]
        return np.concatenate(parts)

    def edge_mark_counts(self, incidence: sp.csr_matrix, marked: np.ndarray) -> np.ndarray:  # noqa: D102
        obs_metrics.inc("backend/matvec_calls")
        return incidence @ marked.astype(np.int64)


class ProcessBackend(ExecutionBackend):
    """Process-pool execution of the bulk steps.

    Parameters
    ----------
    workers:
        Number of worker processes.
    chunk_size:
        Items per task.  Fixed chunking (rather than per-worker splits)
        makes results independent of *workers*, so a run is reproducible on
        any machine.

    Notes
    -----
    Worth it only for large n (pickling incidence chunks has real cost);
    the cross-over is measured in ``benchmarks/bench_e10_algorithm_matrix.py``.
    """

    def __init__(self, workers: int = 2, chunk_size: int = 1 << 16):
        if workers < 1:
            raise ValueError(f"need at least one worker: {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive: {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self._pool: WorkerPool | None = WorkerPool(workers)
        # Pre-split incidence cache: the algorithms call edge_mark_counts
        # with the same (per-round) incidence object many times, so the row
        # slicing is done once per matrix.  The strong reference keeps the
        # matrix alive, which is what makes the identity check sound (a
        # dead object's id could be reused).
        self._split_for: sp.csr_matrix | None = None
        self._split_chunks: list[sp.csr_matrix] | None = None

    def _require_pool(self) -> WorkerPool:
        if self._pool is None:
            raise RuntimeError("backend already closed")
        return self._pool

    def bernoulli(self, seed: SeedLike, n: int, p: float) -> np.ndarray:  # noqa: D102
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability out of range: {p}")
        obs_metrics.inc("backend/bernoulli_calls")
        obs_metrics.inc("backend/bernoulli_draws", n)
        if n == 0:
            return np.zeros(0, dtype=bool)
        chunks = [
            min(self.chunk_size, n - start) for start in range(0, n, self.chunk_size)
        ]
        seeds = spawn_seeds(seed, len(chunks))
        args = [(s, c, p) for s, c in zip(seeds, chunks)]
        parts = list(self._require_pool().map(_bernoulli_chunk, args))
        return np.concatenate(parts)

    def _incidence_chunks(self, incidence: sp.csr_matrix) -> list[sp.csr_matrix]:
        """Row chunks of *incidence*, split once per matrix and reused.

        Keyed on the matrix object itself (one-entry cache): successive
        calls within a round — and across rounds that reuse a hypergraph —
        skip the repeated CSR row slicing that used to run on every call.
        """
        if self._split_for is not incidence or self._split_chunks is None:
            m = incidence.shape[0]
            self._split_chunks = [
                incidence[start : min(start + self.chunk_size, m)]
                for start in range(0, m, self.chunk_size)
            ]
            self._split_for = incidence
        return self._split_chunks

    def edge_mark_counts(self, incidence: sp.csr_matrix, marked: np.ndarray) -> np.ndarray:  # noqa: D102
        """Per-edge marked-vertex counts, fanned out by row chunks.

        Crossover note: each task still pickles its (pre-split) chunk and
        the marked vector, so the pool only pays off once a chunk's matvec
        outweighs ~1 ms of IPC — empirically ``m·d`` beyond ~10⁶ nonzeros
        per chunk.  Below that, single-chunk inputs short-circuit to the
        in-process matvec; the pre-split cache removes the slicing cost
        from the per-round path either way.
        """
        obs_metrics.inc("backend/matvec_calls")
        m = incidence.shape[0]
        if m == 0:
            return np.zeros(0, dtype=np.int64)
        marked64 = marked.astype(np.int64)
        if m <= self.chunk_size:
            return incidence @ marked64
        args = [(chunk, marked64) for chunk in self._incidence_chunks(incidence)]
        parts = list(self._require_pool().map(_matvec_chunk, args))
        return np.concatenate(parts)

    def close(self) -> None:  # noqa: D102
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._split_for = None
        self._split_chunks = None


def deterministic_equivalence(
    backends: Sequence[ExecutionBackend],
    seed: SeedLike,
    n: int,
    p: float,
    incidence: sp.csr_matrix | None = None,
) -> bool:
    """Do all *backends* produce identical bulk results for the same seed?

    The chunking contract says results depend only on ``(seed, chunk_size)``
    — never on worker count or execution order — so backends sharing a
    ``chunk_size`` must agree bit-for-bit.  To certify the contract rather
    than the vacuous single-chunk case, *n* must span more than one chunk
    of every backend; a single-chunk draw never crosses a chunk boundary,
    so it would "certify" nothing, and this function raises ``ValueError``
    instead of silently passing.

    When *incidence* is given (shape ``m × n``), the per-edge mark counts
    for the drawn mask are compared too, exercising the matvec fan-out
    (and :class:`ProcessBackend`'s pre-split cache) across chunk
    boundaries.
    """
    sizes = [b.chunk_size for b in backends if hasattr(b, "chunk_size")]
    if sizes and n <= max(sizes):
        raise ValueError(
            f"n={n} fits within one chunk (largest chunk_size is {max(sizes)}); "
            "use n spanning multiple chunks to exercise the chunking contract"
        )
    drawn = [b.bernoulli(seed, n, p) for b in backends]
    first = drawn[0]
    if not all(np.array_equal(first, other) for other in drawn[1:]):
        return False
    if incidence is not None:
        if incidence.shape[1] != n:
            raise ValueError(
                f"incidence has {incidence.shape[1]} columns, expected n={n}"
            )
        counts = [b.edge_mark_counts(incidence, first) for b in backends]
        ref = counts[0]
        if not all(np.array_equal(ref, other) for other in counts[1:]):
            return False
    return True
