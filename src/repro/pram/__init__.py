"""EREW PRAM cost model and execution backends.

The paper's results are stated for the EREW PRAM: time = parallel depth,
processors = poly(m, n).  CPython cannot honestly demonstrate shared-memory
PRAM speedups (GIL), so this package separates the two concerns:

* **Accounting** (:mod:`repro.pram.machine`): algorithms describe each bulk
  step they perform to a :class:`~repro.pram.machine.Machine`; the
  :class:`~repro.pram.machine.CountingMachine` charges the canonical EREW
  costs (a broadcast or reduction over *n* items costs ``⌈log₂ n⌉`` depth,
  a scan ``2⌈log₂ n⌉``, an elementwise map ``1``) and accumulates depth,
  work, and the processor count implied by Brent's theorem.  The
  :class:`~repro.pram.machine.NullMachine` makes accounting free when not
  needed.
* **Execution** (:mod:`repro.pram.backend`): the data-parallel inner steps
  (Bernoulli marking, per-edge mark counts) can actually be fanned out to a
  process pool, demonstrating real parallel execution of the
  embarrassingly parallel part of each round.
* **Primitives** (:mod:`repro.pram.primitives`): scan / reduce / compact
  implementations that both compute (via NumPy) and charge the machine.
"""

from repro.pram.machine import CostModel, CountingMachine, Machine, NullMachine, PhaseCost
from repro.pram.primitives import (
    broadcast,
    compact,
    exclusive_scan,
    inclusive_scan,
    pmap,
    preduce,
)
from repro.pram.backend import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    deterministic_equivalence,
)
from repro.pram.bl_program import BLRoundProgram, run_bl_round_program
from repro.pram.simulator import AccessViolation, EREWSimulator, Instruction

__all__ = [
    "Machine",
    "CountingMachine",
    "NullMachine",
    "CostModel",
    "PhaseCost",
    "pmap",
    "preduce",
    "inclusive_scan",
    "exclusive_scan",
    "broadcast",
    "compact",
    "ExecutionBackend",
    "EREWSimulator",
    "Instruction",
    "AccessViolation",
    "BLRoundProgram",
    "run_bl_round_program",
    "SerialBackend",
    "ProcessBackend",
    "deterministic_equivalence",
]
