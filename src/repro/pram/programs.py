"""Reference EREW PRAM programs, executed on the step-level simulator.

Each program builds the instruction sequence, runs it on an
:class:`~repro.pram.simulator.EREWSimulator`, and returns the number of
steps — which the tests compare against the canonical depths the
:class:`~repro.pram.machine.CountingMachine` charges.  Because the
simulator rejects any concurrent access, a green test here is a *proof*
that the claimed EREW depths are achievable without concurrent reads,
closing the loop on the cost model (DESIGN.md §2's substitution).

All programs operate in place on named shared arrays; operand counts
beyond the array length are switched off via ``None`` addresses.
"""

from __future__ import annotations

import operator
from typing import Callable

from repro.pram.simulator import EREWSimulator, Instruction
from repro.util.itlog import log2_ceil

__all__ = [
    "broadcast",
    "tree_reduce",
    "exclusive_prefix_sum",
    "compact",
    "segmented_broadcast",
    "segmented_combine",
]


def broadcast(sim: EREWSimulator, name: str, n: int) -> int:
    """Copy ``x[0]`` into ``x[0 … n−1]`` by pointer doubling.

    Depth ``⌈log₂ n⌉``: after step k, cells ``0 … 2^{k+1}−1`` hold the
    value; step k has processor p (for ``2^k ≤ p < min(2^{k+1}, n)``) copy
    ``x[p − 2^k] → x[p]`` — sources and destinations are disjoint ranges,
    so the step is exclusive by construction.
    """
    if n < 1:
        raise ValueError(f"need n >= 1: {n}")
    steps = 0
    k = 0
    while (1 << k) < n:
        lo, hi = 1 << k, min(1 << (k + 1), n)

        def dst(p: int, lo=lo, hi=hi) -> int | None:
            return p if lo <= p < hi else None

        def src(p: int, lo=lo) -> int | None:
            return p - lo

        sim.step(Instruction(name, dst, name, src, label=f"broadcast k={k}"))
        steps += 1
        k += 1
    assert steps == log2_ceil(n)
    return steps


def tree_reduce(
    sim: EREWSimulator,
    name: str,
    n: int,
    op: Callable[[float, float], float] = operator.add,
) -> int:
    """Fold ``x[0 … n−1]`` into ``x[0]`` along a binary tree.

    Depth ``⌈log₂ n⌉``: at level k, processor p with ``p ≡ 0 (mod 2^{k+1})``
    and partner ``p + 2^k < n`` computes ``x[p] = op(x[p], x[p+2^k])``.
    Each processor reads its own cell plus a distinct partner, so the step
    is exclusive.
    """
    if n < 1:
        raise ValueError(f"need n >= 1: {n}")
    steps = 0
    k = 0
    while (1 << k) < n:
        stride = 1 << (k + 1)
        half = 1 << k

        def dst(p: int, stride=stride, half=half) -> int | None:
            return p if p % stride == 0 and p + half < n else None

        def a(p: int) -> int:
            return p

        def b(p: int, half=half) -> int:
            return p + half

        sim.step(
            Instruction(name, dst, name, a, name, b, op=op, label=f"reduce k={k}")
        )
        steps += 1
        k += 1
    assert steps == log2_ceil(n)
    return steps


def exclusive_prefix_sum(sim: EREWSimulator, name: str, n: int) -> int:
    """Blelchoch-style exclusive scan in place; requires ``n`` a power of two.

    Up-sweep (``log n`` steps), root clear (1 step), down-sweep
    (``3·log n`` steps — the swap is decomposed into three single-write
    instructions via a scratch array ``name+'_tmp'``).
    """
    if n < 1 or (n & (n - 1)) != 0:
        raise ValueError(f"n must be a positive power of two: {n}")
    tmp = name + "_tmp"
    try:
        sim.memory(tmp)
    except KeyError:
        sim.alloc(tmp, n)
    steps = 0
    levels = log2_ceil(n)
    # Up-sweep.
    for k in range(levels):
        stride = 1 << (k + 1)
        half = 1 << k

        def dst(p: int, stride=stride) -> int | None:
            return p + stride - 1 if p % stride == 0 and p + stride - 1 < n else None

        def a(p: int, stride=stride) -> int:
            return p + stride - 1

        def b(p: int, stride=stride, half=half) -> int:
            return p + half - 1

        sim.step(
            Instruction(name, dst, name, a, name, b, op=operator.add,
                        label=f"upsweep k={k}")
        )
        steps += 1
    # Clear the root.
    sim.memory(tmp)[0] = 0.0
    sim.step(
        Instruction(
            name,
            lambda p: n - 1 if p == 0 else None,
            tmp,
            lambda p: 0,
            label="clear root",
        )
    )
    steps += 1
    # Down-sweep: at each level, left' = right, right' = left + right.
    for k in reversed(range(levels)):
        stride = 1 << (k + 1)
        half = 1 << k

        def left(p: int, stride=stride, half=half) -> int | None:
            return p + half - 1 if p % stride == 0 and p + stride - 1 < n else None

        def right(p: int, stride=stride) -> int | None:
            return p + stride - 1 if p % stride == 0 and p + stride - 1 < n else None

        # (1) tmp[left] = x[left]
        sim.step(Instruction(tmp, left, name, left, label=f"down save k={k}"))
        # (2) x[left] = x[right]
        sim.step(Instruction(name, left, name, right, label=f"down move k={k}"))
        # (3) x[right] = tmp[left] + x[right]
        sim.step(
            Instruction(name, right, tmp, left, name, right, op=operator.add,
                        label=f"down add k={k}")
        )
        steps += 3
    return steps


def compact(sim: EREWSimulator, src: str, flags: str, dst: str, n: int) -> int:
    """Stable compaction: ``dst[rank(p)] = src[p]`` for flagged positions.

    Builds ranks with :func:`exclusive_prefix_sum` over a copy of the
    flags, then scatters in one step (distinct ranks ⇒ exclusive writes).
    Requires ``n`` a power of two (pad the inputs).
    """
    ranks = flags + "_ranks"
    try:
        sim.memory(ranks)
    except KeyError:
        sim.alloc(ranks, n)
    # ranks ← flags (one parallel move), then scan in place.
    sim.step(Instruction(ranks, lambda p: p if p < n else None, flags, lambda p: p))
    steps = 1 + exclusive_prefix_sum(sim, ranks, n)

    flag_values = sim.memory(flags)
    rank_values = sim.memory(ranks)

    def dst_addr(p: int) -> int | None:
        if p >= n or flag_values[p] == 0:
            return None
        return int(rank_values[p])

    sim.step(Instruction(dst, dst_addr, src, lambda p: p, label="scatter"))
    return steps + 1


def segmented_broadcast(sim: EREWSimulator, name: str, seg: int, num_segs: int) -> int:
    """Copy each segment head across its segment (uniform segments).

    The array is laid out as *num_segs* back-to-back segments of length
    *seg* (a power of two); after the program, every cell of segment ``g``
    holds the value that was at position ``g·seg``.  Depth ``log₂ seg`` by
    in-segment copy doubling; sources and destinations are disjoint within
    and across segments, so every step is exclusive.
    """
    if seg < 1 or (seg & (seg - 1)) != 0:
        raise ValueError(f"segment size must be a positive power of two: {seg}")
    total = seg * num_segs
    steps = 0
    k = 0
    while (1 << k) < seg:
        lo, hi = 1 << k, 1 << (k + 1)

        def dst(p: int, lo=lo, hi=hi, total=total) -> int | None:
            if p >= total:
                return None
            o = p % seg
            return p if lo <= o < hi else None

        def src(p: int, lo=lo) -> int:
            return p - lo

        sim.step(Instruction(name, dst, name, src, label=f"segbcast k={k}"))
        steps += 1
        k += 1
    return steps


def segmented_combine(
    sim: EREWSimulator,
    name: str,
    seg: int,
    num_segs: int,
    op: Callable[[float, float], float] = operator.add,
) -> int:
    """Fold each uniform segment into its head (binary tree per segment).

    Inverse of :func:`segmented_broadcast`: after the program, position
    ``g·seg`` holds ``op``-fold of segment ``g``.  Depth ``log₂ seg``.
    """
    if seg < 1 or (seg & (seg - 1)) != 0:
        raise ValueError(f"segment size must be a positive power of two: {seg}")
    total = seg * num_segs
    steps = 0
    k = 0
    while (1 << k) < seg:
        stride = 1 << (k + 1)
        half = 1 << k

        def dst(p: int, stride=stride, half=half, total=total) -> int | None:
            if p >= total:
                return None
            return p if (p % seg) % stride == 0 else None

        def a(p: int) -> int:
            return p

        def b(p: int, half=half) -> int:
            return p + half

        sim.step(
            Instruction(name, dst, name, a, name, b, op=op, label=f"segfold k={k}")
        )
        steps += 1
        k += 1
    return steps
