"""The fuzz campaign engine: budget loop, shrink-on-failure, telemetry.

``run_fuzz`` drives the whole pipeline the CLI and CI expose::

    case stream (fuzzer) -> differential battery -> [on failure]
        restrict to the failing subjects -> shrink -> save reproducer

The engine is deterministic for a fixed ``(seed, budget-in-cases)``; a
time budget ("60s") trades that for wall-clock control — CI uses a time
budget with a fixed seed, which is deterministic in *content* (case k is
always the same) even though the stopping index varies with machine
speed.

Telemetry rides the ambient tracer from :mod:`repro.obs`: one
``fuzz/run`` span over the campaign, one ``fuzz/case`` span per case
(family, sizes, failure count), and ``qa/*`` metrics counters — so a
``--telemetry`` JSONL stream shows exactly which case went wrong and how
long every stage took.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from repro.obs import metrics as obs_metrics
from repro.obs.tracer import current_tracer
from repro.qa.differential import SOLVERS, Failure, make_predicate, run_case
from repro.qa.fuzzer import FuzzCase, generate_case
from repro.qa.regressions import save_reproducer
from repro.qa.shrinker import shrink

__all__ = ["Budget", "parse_budget", "CaseReport", "FuzzReport", "run_fuzz"]

_KNOWN_SOLVER_NAMES = {s.name for s in SOLVERS}

#: Failure checks that only the metamorphic battery can reproduce.
_METAMORPHIC_CHECKS = {
    "determinism",
    "canonicalisation",
    "edge-order",
    "relabel",
    "component-split",
    "component-merge",
}


@dataclass(frozen=True)
class Budget:
    """Either a case-count budget or a wall-clock budget (never both)."""

    cases: int | None = None
    seconds: float | None = None

    def __str__(self) -> str:
        if self.seconds is not None:
            return f"{self.seconds:g}s"
        return str(self.cases)


def parse_budget(text: str) -> Budget:
    """Parse ``"200"`` (cases), ``"60s"`` (seconds) or ``"2m"`` (minutes)."""
    text = text.strip().lower()
    try:
        if text.endswith("ms"):
            return Budget(seconds=float(text[:-2]) / 1000.0)
        if text.endswith("s"):
            return Budget(seconds=float(text[:-1]))
        if text.endswith("m"):
            return Budget(seconds=float(text[:-1]) * 60.0)
        cases = int(text)
    except ValueError:
        raise ValueError(
            f"bad budget {text!r}: want a case count ('200') or a duration "
            "('60s', '2m')"
        ) from None
    if cases < 0:
        raise ValueError(f"budget must be non-negative: {cases}")
    return Budget(cases=cases)


@dataclass
class CaseReport:
    """One failing case: what broke, and where the reproducer went."""

    index: int
    description: str
    failures: list[Failure]
    reproducer: Path | None = None
    shrunk_n: int | None = None
    shrunk_m: int | None = None


@dataclass
class FuzzReport:
    """Campaign outcome returned by :func:`run_fuzz`."""

    seed: int
    budget: Budget
    cases: int = 0
    elapsed_s: float = 0.0
    failures: list[CaseReport] = field(default_factory=list)
    stop_reason: str = "budget-exhausted"

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "clean" if self.ok else f"{len(self.failures)} failing case(s)"
        return (
            f"fuzz seed={self.seed} budget={self.budget}: {self.cases} cases "
            f"in {self.elapsed_s:.1f}s — {verdict} [{self.stop_reason}]"
        )


def _shrink_settings(failures: list[Failure]) -> tuple[list[str], bool, bool]:
    """Derive the narrowest predicate that still reproduces *failures*.

    An empty solver list is meaningful: only extra/oracle subjects
    failed, so shrink candidates skip the healthy library fleet entirely.
    """
    solvers = sorted({f.solver for f in failures} & _KNOWN_SOLVER_NAMES)
    metamorphic = any(f.check in _METAMORPHIC_CHECKS for f in failures)
    oracle = any(f.check == "oracle" or f.solver == "kuw-oracle" for f in failures)
    return solvers, metamorphic, oracle


def _handle_failure(
    case: FuzzCase,
    failures: list[Failure],
    out_dir: Path | None,
    extra_solvers: Mapping[str, Callable] | None,
    do_shrink: bool,
    max_shrink_evals: int,
    fuzz_seed: int,
) -> CaseReport:
    report = CaseReport(case.index, case.describe(), failures)
    if out_dir is None:
        return report
    if case.family == "stream-updates":
        return _handle_stream_failure(
            case, failures, report, out_dir, do_shrink, max_shrink_evals, fuzz_seed
        )
    H = case.hypergraph
    shrunk_kind = "unshrunk-failure"
    shrink_meta: dict = {}
    certificate_only = all(f.solver == "planted" for f in failures)
    if do_shrink and not certificate_only:
        solvers, metamorphic, oracle = _shrink_settings(failures)
        # Keep only the extra subjects that actually failed — shrinking
        # against a healthy solver fleet would never converge.
        extras = None
        if extra_solvers:
            failing = {f.solver for f in failures}
            extras = {n: fn for n, fn in extra_solvers.items() if n in failing} or None
        fails = make_predicate(
            case.solver_seed,
            solvers=solvers,
            extra_solvers=extras,
            metamorphic=metamorphic,
            oracle=oracle,
        )
        try:
            result = shrink(H, fails, max_evals=max_shrink_evals)
        except ValueError:
            # Not reproducible under the narrowed predicate (flaky
            # environment failure, or an extra solver with state): pin
            # the unshrunk instance instead.
            result = None
        if result is not None:
            H = result.hypergraph
            shrunk_kind = "shrunk-failure"
            shrink_meta = {
                "evals": result.evals,
                "from": {"n": case.hypergraph.num_vertices, "m": case.hypergraph.num_edges},
            }
    manifest = {
        "kind": shrunk_kind,
        "seed": case.solver_seed,
        "solvers": sorted({f.solver for f in failures} & _KNOWN_SOLVER_NAMES) or None,
        "description": f"fuzz failure: {case.describe()}",
        "failures": [str(f) for f in failures],
        "fuzz": {
            "seed": fuzz_seed,
            "index": case.index,
            "family": case.family,
            "params": case.params,
            "mutations": list(case.mutations),
        },
        "shrink": shrink_meta,
        "replay": {"metamorphic": True, "oracle": True, "focus_index": 0},
    }
    report.reproducer = save_reproducer(H, manifest, out_dir)
    report.shrunk_n = H.num_vertices
    report.shrunk_m = H.num_edges
    return report


def _handle_stream_failure(
    case: FuzzCase,
    failures: list[Failure],
    report: CaseReport,
    out_dir: Path,
    do_shrink: bool,
    max_shrink_evals: int,
    fuzz_seed: int,
) -> CaseReport:
    """Pin a failing stream case: shrink the *update sequence*, not the graph.

    The starting hypergraph goes into the archive as usual; the (possibly
    ddmin-minimised) update batches ride in ``manifest["stream"]``, which
    is what routes :func:`repro.qa.regressions.replay` back to the stream
    battery.
    """
    from repro.qa.streams import (
        encode_steps,
        make_stream_predicate,
        shrink_steps,
        steps_from_params,
    )

    H = case.hypergraph
    steps = steps_from_params(case.params)
    shrunk_kind = "unshrunk-failure"
    shrink_meta: dict = {}
    if do_shrink:
        try:
            shrunk, evals = shrink_steps(
                H,
                steps,
                make_stream_predicate(H, case.solver_seed),
                max_evals=min(max_shrink_evals, 400),
            )
        except ValueError:
            shrunk = None  # not reproducible under re-evaluation: pin as-is
        if shrunk is not None:
            shrink_meta = {
                "evals": evals,
                "from_batches": len(steps),
                "from_events": sum(len(a) + len(r) for a, r in steps),
            }
            steps = shrunk
            shrunk_kind = "shrunk-failure"
    manifest = {
        "kind": shrunk_kind,
        "seed": case.solver_seed,
        "solvers": None,
        "description": f"stream fuzz failure: {case.describe()}",
        "failures": [str(f) for f in failures],
        "fuzz": {
            "seed": fuzz_seed,
            "index": case.index,
            "family": case.family,
            "params": {k: v for k, v in case.params.items() if k != "stream"},
            "mutations": list(case.mutations),
        },
        "shrink": shrink_meta,
        "stream": {"steps": encode_steps(steps)},
    }
    report.reproducer = save_reproducer(H, manifest, out_dir)
    report.shrunk_n = H.num_vertices
    report.shrunk_m = H.num_edges
    return report


def _case_battery(payload: tuple) -> list[Failure]:
    """Rebuild fuzz case ``(seed, index)`` and run its differential battery.

    Module-level so :meth:`ParallelRunner.map_tasks` can pickle it into
    worker processes; the case is regenerated from its coordinates (pure,
    a few hundred microseconds) instead of shipping the hypergraph over.
    Runs under whatever tracer is ambient in the calling process — in a
    worker that is the private memory-sink tracer the runner splices back.
    """
    seed, index, solvers, extra_solvers, metamorphic, oracle = payload
    return _run_battery(
        generate_case(seed, index), solvers, extra_solvers, metamorphic, oracle
    )


def _run_battery(
    case: FuzzCase,
    solvers: list[str] | None,
    extra_solvers: Mapping[str, Callable] | None,
    metamorphic: bool,
    oracle: bool,
) -> list[Failure]:
    H = case.hypergraph
    tracer = current_tracer()
    with tracer.span(
        "fuzz/case",
        index=case.index,
        family=case.family,
        n=H.num_vertices,
        m=H.num_edges,
        dim=H.dimension,
    ) as span:
        if case.family == "stream-updates":
            from repro.qa.streams import run_stream_battery, steps_from_params

            failures = run_stream_battery(
                H, steps_from_params(case.params), case.solver_seed
            )
        else:
            failures = run_case(
                H,
                case.solver_seed,
                solvers=solvers,
                extra_solvers=extra_solvers,
                focus_index=case.index,
                metamorphic=metamorphic,
                oracle=oracle,
                certificate=case.certificate,
            )
        if tracer.enabled:
            span.set(failures=len(failures), mutations=list(case.mutations))
    return failures


def run_fuzz(
    budget: Budget | str,
    seed: int = 0,
    *,
    solvers: list[str] | None = None,
    extra_solvers: Mapping[str, Callable] | None = None,
    out_dir: str | Path | None = None,
    max_failures: int = 1,
    shrink_failures: bool = True,
    max_shrink_evals: int = 2000,
    metamorphic: bool = True,
    oracle: bool = True,
    start_index: int = 0,
    on_case: Callable[[FuzzCase, list[Failure]], None] | None = None,
    workers: int | None = None,
) -> FuzzReport:
    """Run a differential fuzzing campaign.

    Parameters
    ----------
    budget:
        A :class:`Budget` or its string form (``"200"`` cases, ``"60s"``).
    seed:
        Campaign seed; fully determines every case (see
        :func:`repro.qa.fuzzer.generate_case`).
    solvers, extra_solvers:
        Subject selection, as in :func:`repro.qa.differential.run_case`.
    out_dir:
        Where reproducers are written (``None`` disables writing).
    max_failures:
        Stop after this many failing cases (CI wants 1).
    shrink_failures, max_shrink_evals:
        Delta-debug failing instances before saving.
    metamorphic, oracle:
        Invariant groups to run per case.
    start_index:
        First case index (resume a stream past known-clean prefixes).
    on_case:
        Observer hook called after each case with its failures.
    workers:
        Fan case batteries out over N worker processes via the shared
        :class:`~repro.exec.runner.ParallelRunner` (``None``/``0`` =
        in-process).  Case content, processing order and the failure
        report are identical to serial for a case budget; a time budget
        may overshoot by up to one dispatch chunk before it stops.
        ``extra_solvers`` must be picklable to cross the pool boundary.
    """
    if isinstance(budget, str):
        budget = parse_budget(budget)
    seed = int(seed)
    out_path = Path(out_dir) if out_dir is not None else None
    report = FuzzReport(seed=seed, budget=budget)
    tracer = current_tracer()
    t0 = time.monotonic()

    def exhausted(index_offset: int) -> bool:
        if budget.cases is not None and index_offset >= budget.cases:
            return True
        if budget.seconds is not None and time.monotonic() - t0 >= budget.seconds:
            return True
        return False

    def fold(case: FuzzCase, failures: list[Failure]) -> bool:
        """Account one completed case; True = stop (max failures hit)."""
        if on_case is not None:
            on_case(case, failures)
        if not failures:
            return False
        obs_metrics.inc("qa/failing_cases")
        if tracer.enabled:
            tracer.emit(
                "fuzz_failure",
                index=case.index,
                failures=[str(f) for f in failures],
            )
        report.failures.append(
            _handle_failure(
                case,
                failures,
                out_path,
                extra_solvers,
                shrink_failures,
                max_shrink_evals,
                seed,
            )
        )
        if len(report.failures) >= max_failures:
            report.stop_reason = "max-failures"
            return True
        return False

    with tracer.span(
        "fuzz/run", seed=seed, budget=str(budget), workers=workers or 0
    ) as run_span:
        offset = 0
        if workers:
            from repro.exec.runner import ParallelRunner

            with ParallelRunner(workers) as runner:
                # Chunked dispatch: enough cases in flight to keep every
                # worker busy, small enough that a time budget or an early
                # max-failures stop does not overrun by much.
                chunk = max(2 * runner.workers, 4)
                stop = False
                while not stop and not exhausted(offset):
                    size = chunk
                    if budget.cases is not None:
                        size = min(size, budget.cases - offset)
                    indices = [start_index + offset + i for i in range(size)]
                    batch = runner.map_tasks(
                        _case_battery,
                        [
                            (seed, idx, solvers, extra_solvers, metamorphic, oracle)
                            for idx in indices
                        ],
                        label="fuzz/chunk",
                    )
                    for index, failures in zip(indices, batch):
                        obs_metrics.inc("qa/cases")
                        report.cases += 1
                        offset += 1
                        if failures or on_case is not None:
                            # The case itself stays in the worker; rebuild
                            # it (pure in (seed, index)) only when needed.
                            if fold(generate_case(seed, index), failures):
                                stop = True
                                break
        else:
            while not exhausted(offset):
                case = generate_case(seed, start_index + offset)
                failures = _run_battery(
                    case, solvers, extra_solvers, metamorphic, oracle
                )
                obs_metrics.inc("qa/cases")
                report.cases += 1
                offset += 1
                if fold(case, failures):
                    break
        report.elapsed_s = time.monotonic() - t0
        if tracer.enabled:
            run_span.set(
                cases=report.cases,
                failing_cases=len(report.failures),
                stop_reason=report.stop_reason,
            )
    return report
