"""Fault-injection solver wrappers — planted bugs for testing the testers.

A fuzzing subsystem that has never caught a bug proves nothing about
itself.  These wrappers wrap a correct solver and misbehave under a
structural trigger (edge count above a threshold), giving the test suite
known-bad subjects: the harness must *detect* them, the shrinker must
minimise their trigger to a handful of edges, and a saved reproducer
must replay the failure deterministically.

The wrappers mimic the library solver signature (``fn(H, seed=None,
**kwargs) -> MISResult``) so they plug into
:func:`repro.qa.differential.run_case` via ``extra_solvers``.

:func:`slow_phase` is the *performance* twin: results stay correct but a
planted busy-spin burns CPU inside a named span, giving the regression
forensics (``repro trace diff``, the sampling profiler) a known culprit
they must convict.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.core import greedy_mis
from repro.core.result import MISResult
from repro.hypergraph.hypergraph import Hypergraph
from repro.obs.tracer import current_tracer

__all__ = [
    "drop_maximality_above",
    "break_independence_above",
    "nondeterministic",
    "slow_phase",
]


def _rewrap(result: MISResult, members: np.ndarray, name: str) -> MISResult:
    return MISResult(
        independent_set=np.asarray(members, dtype=np.intp),
        algorithm=name,
        n=result.n,
        m=result.m,
        rounds=[],
        machine=None,
        meta={"fault": name},
    )


def drop_maximality_above(
    max_edges: int, base: Callable = greedy_mis
) -> Callable[..., MISResult]:
    """A solver that silently drops one MIS vertex once ``m > max_edges``.

    On trigger the returned set is the base solver's MIS minus its
    largest member — independent but not maximal, so the harness must
    flag a ``maximality`` failure, and the minimal trigger instance has
    exactly ``max_edges + 1`` edges (what the shrinker should find).
    """

    def solver(H: Hypergraph, seed=None, **kwargs) -> MISResult:
        result = base(H, seed=seed, **kwargs)
        members = np.asarray(result.independent_set, dtype=np.intp)
        if H.num_edges > max_edges and members.size:
            return _rewrap(result, members[:-1], f"greedy[drop-max>{max_edges}]")
        return result

    return solver


def break_independence_above(
    max_edges: int, base: Callable = greedy_mis
) -> Callable[..., MISResult]:
    """A solver that adds a forbidden vertex once ``m > max_edges``.

    On trigger the first edge's missing vertices are force-added to the
    result, planting that edge fully inside the returned set — an
    ``independence`` failure with a concrete edge witness.
    """

    def solver(H: Hypergraph, seed=None, **kwargs) -> MISResult:
        result = base(H, seed=seed, **kwargs)
        members = np.asarray(result.independent_set, dtype=np.intp)
        if H.num_edges > max_edges:
            forced = np.union1d(members, np.asarray(H.edges[0], dtype=np.intp))
            return _rewrap(result, forced, f"greedy[break-ind>{max_edges}]")
        return result

    return solver


def _planted_hot_frame(deadline_ns: int) -> int:
    """Busy-spin until *deadline_ns* — the frame a sampling profiler must name.

    A real spin (not ``time.sleep``) so the planted slowdown shows up in
    CPU attribution and stack samples alike; the loop body does trivial
    arithmetic to stay in this Python frame.
    """
    spins = 0
    while time.perf_counter_ns() < deadline_ns:
        spins += 1
    return spins


def slow_phase(
    delay_s: float,
    base: Callable = greedy_mis,
    *,
    span: str = "planted/slow_phase",
) -> Callable[..., MISResult]:
    """A solver that burns ``delay_s`` of CPU inside its own named span.

    The *performance* fault twin of the correctness wrappers above: the
    result is bit-identical to the base solver's, but every call opens a
    span named *span* on the ambient tracer and busy-spins inside
    :func:`_planted_hot_frame`.  Regression forensics must convict it —
    ``repro trace diff`` against an unwrapped baseline ranks the planted
    span as the top wall-time regression, and the profiler's flame output
    names the spinning frame.
    """
    if delay_s < 0:
        raise ValueError(f"delay must be non-negative: {delay_s}")

    def solver(H: Hypergraph, seed=None, **kwargs) -> MISResult:
        result = base(H, seed=seed, **kwargs)
        tracer = current_tracer()
        with tracer.span(span, delay_s=delay_s):
            _planted_hot_frame(time.perf_counter_ns() + int(delay_s * 1e9))
        return result

    return solver


def nondeterministic(base: Callable = greedy_mis) -> Callable[..., MISResult]:
    """A solver that ignores its seed on every second call.

    Each odd-numbered invocation perturbs the seed, so the determinism
    invariant (same seed, bit-identical output) breaks as soon as two
    runs land on instances where the scan order matters.
    """
    calls = {"n": 0}

    def solver(H: Hypergraph, seed=None, **kwargs) -> MISResult:
        calls["n"] += 1
        if calls["n"] % 2 == 0 and seed is not None:
            seed = (seed, "nondeterministic", calls["n"])
        return base(H, seed=seed, **kwargs)

    return solver
