"""Structural hypergraph transforms for fuzzing and metamorphic testing.

Two families of functions live here, both pure (they return new
:class:`~repro.hypergraph.Hypergraph` instances):

* **Adversarial mutations** — ``add_duplicate_edges``,
  ``add_superset_edges``, ``add_singleton_edges``,
  ``add_isolated_vertices`` — inject the degenerate shapes that the
  algorithm cleanup phases (superset removal, singleton deletion,
  normalisation) are supposed to absorb.  The fuzzer layers them on top
  of generator output.
* **Semantics-preserving transforms** — ``relabel_vertices``,
  ``shuffle_edge_order``, ``disjoint_union``, ``compact_universe`` — the
  metamorphic invariants of the differential harness: solving a
  transformed instance must still produce a valid MIS, and where the
  transform is a no-op on the canonical form (edge order) the solver
  output must be bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.util.rng import SeedLike, as_generator

__all__ = [
    "add_duplicate_edges",
    "add_superset_edges",
    "add_singleton_edges",
    "add_isolated_vertices",
    "relabel_vertices",
    "shuffle_edge_order",
    "disjoint_union",
    "compact_universe",
]


def add_duplicate_edges(H: Hypergraph, count: int, seed: SeedLike = None) -> Hypergraph:
    """Re-append up to *count* existing edges (in random order).

    Canonicalisation dedups, so the result must compare **equal** to *H*
    — this mutation is a constructor-idempotence probe, not a semantic
    change.  A no-op on edgeless instances.
    """
    if H.num_edges == 0 or count <= 0:
        return H
    rng = as_generator(seed)
    picks = rng.integers(0, H.num_edges, size=count)
    extra = [H.edges[int(i)] for i in picks]
    return H.replace(edges=list(H.edges) + extra)


def add_superset_edges(H: Hypergraph, count: int, seed: SeedLike = None) -> Hypergraph:
    """Add up to *count* strict supersets of existing edges.

    A superset edge is a redundant constraint (its subset already forbids
    full containment), so every MIS of *H* remains independent in the
    mutant; the cleanup phases are expected to strip the supersets.
    Supersets draw their extra vertex from the active set; edges that
    already span all active vertices are skipped.
    """
    if H.num_edges == 0 or count <= 0:
        return H
    rng = as_generator(seed)
    active = H.vertices
    extra: list[tuple[int, ...]] = []
    for i in rng.integers(0, H.num_edges, size=count).tolist():
        e = H.edges[int(i)]
        candidates = np.setdiff1d(active, np.asarray(e, dtype=np.intp))
        if candidates.size == 0:
            continue
        v = int(candidates[int(rng.integers(0, candidates.size))])
        extra.append(tuple(sorted(e + (v,))))
    if not extra:
        return H
    return H.replace(edges=list(H.edges) + extra)


def add_singleton_edges(H: Hypergraph, count: int, seed: SeedLike = None) -> Hypergraph:
    """Forbid up to *count* random active vertices via singleton edges.

    A singleton ``{v}`` permanently excludes *v* from every independent
    set; the BL cleanup colours such vertices red on round one.  A no-op
    on instances with no active vertices.
    """
    if H.num_vertices == 0 or count <= 0:
        return H
    rng = as_generator(seed)
    picks = rng.choice(H.vertices, size=min(count, H.num_vertices), replace=False)
    extra = [(int(v),) for v in np.sort(picks).tolist()]
    return H.replace(edges=list(H.edges) + extra)


def add_isolated_vertices(H: Hypergraph, count: int) -> Hypergraph:
    """Grow the universe by *count* fresh vertices touched by no edge.

    Isolated vertices must all land in any maximal independent set, which
    stresses the maximality side of every solver.
    """
    if count <= 0:
        return H
    new_universe = H.universe + count
    vertices = np.concatenate(
        [H.vertices, np.arange(H.universe, new_universe, dtype=np.intp)]
    )
    return Hypergraph(new_universe, H.edges, vertices=vertices)


def relabel_vertices(
    H: Hypergraph, permutation: np.ndarray | None = None, seed: SeedLike = None
) -> tuple[Hypergraph, np.ndarray]:
    """Apply a universe permutation ``v -> pi[v]`` to vertices and edges.

    Returns ``(H_pi, pi)``.  A solver run on ``H_pi`` must produce a set
    whose preimage under ``pi`` is a valid MIS of *H* — vertex identity
    carries no structural information.
    """
    if permutation is None:
        permutation = as_generator(seed).permutation(H.universe)
    pi = np.asarray(permutation, dtype=np.intp)
    if pi.shape != (H.universe,) or not np.array_equal(np.sort(pi), np.arange(H.universe)):
        raise ValueError("permutation must be a bijection on the universe")
    edges = [tuple(int(pi[v]) for v in e) for e in H.edges]
    vertices = pi[H.vertices]
    return Hypergraph(H.universe, edges, vertices=vertices), pi


def shuffle_edge_order(H: Hypergraph, seed: SeedLike = None) -> Hypergraph:
    """Rebuild *H* from its edges presented in a random order.

    Canonicalisation sorts edges, so the rebuilt instance must compare
    equal to *H* and any seeded solver must return bit-identical output
    on both — presentation order is not allowed to leak into results.
    """
    rng = as_generator(seed)
    edges = list(H.edges)
    order = rng.permutation(len(edges))
    return H.replace(edges=[edges[int(i)] for i in order])


def disjoint_union(A: Hypergraph, B: Hypergraph) -> Hypergraph:
    """Place *B* after *A* on a combined universe (B's ids shifted by |U_A|).

    The components never interact, so the restriction of any MIS of the
    union to either side is an MIS of that side — the component
    split/merge invariant.
    """
    shift = A.universe
    edges = list(A.edges) + [tuple(v + shift for v in e) for e in B.edges]
    vertices = np.concatenate([A.vertices, B.vertices + shift])
    return Hypergraph(A.universe + B.universe, edges, vertices=vertices)


def compact_universe(H: Hypergraph) -> tuple[Hypergraph, np.ndarray]:
    """Drop unused universe slots: relabel active vertices onto ``0..n-1``.

    Returns ``(H_compact, old_ids)`` where ``old_ids[new] = old``.  Used
    by the shrinker so reproducers do not carry dead id ranges.
    """
    old_ids = H.vertices.copy()
    new_of_old = np.full(H.universe, -1, dtype=np.intp)
    new_of_old[old_ids] = np.arange(old_ids.size, dtype=np.intp)
    edges = [tuple(int(new_of_old[v]) for v in e) for e in H.edges]
    return Hypergraph(int(old_ids.size), edges), old_ids
