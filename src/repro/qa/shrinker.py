"""Greedy delta-debugging shrinker for failing fuzz instances.

Classic ddmin adapted to hypergraphs.  Given an instance and a failure
predicate (built by :func:`repro.qa.differential.make_predicate`), the
shrinker repeatedly tries structurally smaller candidates and keeps any
candidate on which the predicate still fails:

1. **Edge ddmin** — remove edge chunks at halving granularity, then
   single edges, until no edge can be dropped.
2. **Vertex elimination** — drop each active vertex (and the edges
   touching it) one at a time.
3. **Universe compaction** — relabel the survivors onto a dense
   ``0..n-1`` range so the reproducer carries no dead id space.

Every candidate evaluation is cached (hypergraphs are hashable values),
and a global evaluation budget bounds the worst case.  The result is
1-minimal with respect to single edge/vertex removal — not globally
minimal, which is the standard ddmin contract and plenty for a readable
reproducer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.qa.mutations import compact_universe

__all__ = ["ShrinkResult", "shrink"]


@dataclass
class ShrinkResult:
    """The minimised instance plus shrink accounting."""

    hypergraph: Hypergraph
    evals: int
    cache_hits: int
    steps: list[str] = field(default_factory=list)

    def summary(self) -> str:
        H = self.hypergraph
        return (
            f"shrunk to n={H.num_vertices} m={H.num_edges} "
            f"(evals={self.evals}, cache_hits={self.cache_hits})"
        )


class _Budget:
    def __init__(self, fails: Callable[[Hypergraph], bool], max_evals: int):
        self.fails = fails
        self.max_evals = max_evals
        self.evals = 0
        self.cache_hits = 0
        self._cache: dict[Hypergraph, bool] = {}

    def __call__(self, H: Hypergraph) -> bool:
        cached = self._cache.get(H)
        if cached is not None:
            self.cache_hits += 1
            return cached
        if self.evals >= self.max_evals:
            return False  # out of budget: treat as "does not fail", stop shrinking
        self.evals += 1
        try:
            verdict = bool(self.fails(H))
        except Exception:  # noqa: BLE001 — a predicate crash is not a repro
            verdict = False
        self._cache[H] = verdict
        return verdict


def _with_edges(H: Hypergraph, keep: list[tuple[int, ...]]) -> Hypergraph:
    return Hypergraph(H.universe, keep, vertices=H.vertices)


def _ddmin_edges(H: Hypergraph, fails: _Budget, steps: list[str]) -> Hypergraph:
    """Remove edge chunks at halving granularity (ddmin's complement loop)."""
    edges = list(H.edges)
    granularity = 2
    while len(edges) >= 2:
        chunk = max(1, len(edges) // granularity)
        removed_any = False
        start = 0
        while start < len(edges):
            candidate = edges[:start] + edges[start + chunk :]
            if candidate != edges and fails(_with_edges(H, candidate)):
                edges = candidate
                steps.append(f"edges -> {len(edges)}")
                removed_any = True
                # Re-test the same start offset: the list shifted left.
            else:
                start += chunk
        if removed_any:
            granularity = max(granularity - 1, 2)
        elif chunk == 1:
            break
        else:
            granularity = min(granularity * 2, len(edges))
    return _with_edges(H, edges)


def _eliminate_vertices(H: Hypergraph, fails: _Budget, steps: list[str]) -> Hypergraph:
    """Drop active vertices one at a time while the failure persists."""
    changed = True
    while changed:
        changed = False
        for v in H.vertices.tolist():
            candidate = H.without_vertices(np.asarray([v], dtype=np.intp))
            if fails(candidate):
                H = candidate
                steps.append(f"dropped vertex {v}")
                changed = True
                break
    return H


def shrink(
    H: Hypergraph,
    fails: Callable[[Hypergraph], bool],
    *,
    max_evals: int = 2000,
) -> ShrinkResult:
    """Minimise *H* while ``fails(H)`` stays true.

    Parameters
    ----------
    H:
        A failing instance (``fails(H)`` must hold — raises otherwise,
        because "shrink a passing instance" is always caller error).
    fails:
        The failure predicate.  It must be deterministic; build it from
        :func:`repro.qa.differential.make_predicate` with a fixed seed.
    max_evals:
        Global predicate-evaluation budget.  On exhaustion the current
        (still-failing) candidate is returned.
    """
    budget = _Budget(fails, max_evals)
    if not budget(H):
        raise ValueError("instance does not fail the predicate — nothing to shrink")
    steps: list[str] = []
    while True:
        before = (H.num_vertices, H.num_edges)
        H = _ddmin_edges(H, budget, steps)
        H = _eliminate_vertices(H, budget, steps)
        if (H.num_vertices, H.num_edges) == before:
            break
    compacted, _ = compact_universe(H)
    if compacted.universe < H.universe and budget(compacted):
        steps.append(f"compacted universe {H.universe} -> {compacted.universe}")
        H = compacted
    return ShrinkResult(H, evals=budget.evals, cache_hits=budget.cache_hits, steps=steps)
