"""Replayable reproducer files (``.npz`` + embedded seed manifest).

A reproducer is one ``numpy`` archive holding the instance's canonical
arrays (``universe``, ``vertices``, ``indptr``, ``indices``) and a JSON
manifest (schema, solver seed, solver subset, provenance, the failure
messages observed when the file was written).  Everything needed to
replay lives in the file; no pickle, no external state.

The committed corpus lives in ``tests/regressions/`` and is collected by
the tier-1 suite (``tests/test_regressions.py``): every reproducer ever
shrunk out of a fuzz failure becomes a permanent regression test, and
``repro fuzz replay tests/regressions`` re-runs the same battery from
the command line.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.qa.differential import Failure, run_case

__all__ = [
    "MANIFEST_SCHEMA",
    "save_reproducer",
    "load_reproducer",
    "replay",
    "replay_dir",
]

MANIFEST_SCHEMA = 1

PathLike = Union[str, Path]


def _content_tag(H: Hypergraph, seed: int) -> str:
    digest = hashlib.sha256()
    digest.update(str(H.universe).encode())
    digest.update(H.vertices.tobytes())
    digest.update(H.store.indptr.tobytes())
    digest.update(H.store.indices.tobytes())
    digest.update(str(seed).encode())
    return digest.hexdigest()[:10]


def save_reproducer(
    H: Hypergraph,
    manifest: dict,
    out_dir: PathLike,
    *,
    name: str | None = None,
) -> Path:
    """Write a reproducer archive; returns the path.

    *manifest* must carry ``seed`` (the solver seed, an int); ``schema``
    and a content-addressed filename are filled in here.  An existing
    file of the same name is overwritten (same content hash implies the
    same instance and seed).
    """
    if "seed" not in manifest:
        raise ValueError("manifest must carry the solver 'seed'")
    manifest = {"schema": MANIFEST_SCHEMA, **manifest}
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    if name is None:
        kind = manifest.get("kind", "repro")
        name = f"{kind}-{_content_tag(H, int(manifest['seed']))}.npz"
    path = out_dir / name
    with open(path, "wb") as fh:
        np.savez(
            fh,
            universe=np.asarray(H.universe, dtype=np.int64),
            vertices=np.asarray(H.vertices, dtype=np.int64),
            indptr=np.asarray(H.store.indptr, dtype=np.int64),
            indices=np.asarray(H.store.indices, dtype=np.int64),
            manifest=np.asarray(json.dumps(manifest, sort_keys=True)),
        )
    return path


def load_reproducer(path: PathLike) -> tuple[Hypergraph, dict]:
    """Read a reproducer archive back into ``(hypergraph, manifest)``.

    The instance is rebuilt through the *public* constructor so the file
    contents are re-canonicalised and re-validated — a corrupted archive
    fails loudly here rather than silently skewing a replay.
    """
    with np.load(path, allow_pickle=False) as data:
        universe = int(data["universe"])
        vertices = data["vertices"].astype(np.intp)
        indptr = data["indptr"].astype(np.intp)
        indices = data["indices"].astype(np.intp)
        manifest = json.loads(str(data["manifest"]))
    edges = [
        tuple(int(v) for v in indices[indptr[i] : indptr[i + 1]])
        for i in range(indptr.size - 1)
    ]
    H = Hypergraph(universe, edges, vertices=vertices)
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(
            f"{path}: unsupported manifest schema {manifest.get('schema')!r}"
        )
    return H, manifest


def replay(path: PathLike) -> list[Failure]:
    """Re-run the differential battery recorded in a reproducer.

    Returns the **current** failures (empty once the underlying bug is
    fixed — which is exactly what the regression suite asserts).

    Reproducers carrying a ``stream`` manifest section are update-stream
    cases: the archive's hypergraph is the *starting* state and the
    recorded batches are replayed through the dynamic-engine battery
    instead of the one-shot differential checks.
    """
    H, manifest = load_reproducer(path)
    stream = manifest.get("stream")
    if stream is not None:
        from repro.qa.streams import decode_steps, run_stream_battery

        return run_stream_battery(
            H, decode_steps(stream["steps"]), int(manifest["seed"])
        )
    settings = manifest.get("replay", {})
    return run_case(
        H,
        int(manifest["seed"]),
        solvers=manifest.get("solvers"),
        focus_index=int(settings.get("focus_index", 0)),
        metamorphic=bool(settings.get("metamorphic", True)),
        oracle=bool(settings.get("oracle", True)),
    )


def replay_dir(directory: PathLike) -> dict[str, list[Failure]]:
    """Replay every ``*.npz`` under *directory*; map filename -> failures."""
    return {
        p.name: replay(p) for p in sorted(Path(directory).glob("*.npz"))
    }
