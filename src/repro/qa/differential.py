"""Differential harness: all solvers, one instance, every oracle we have.

For each instance the harness runs every *applicable* solver (Luby needs
2-uniform input, the linear specialisation needs a linear hypergraph) and
checks each result three independent ways:

1. **Structural validator** — :func:`repro.hypergraph.validate.check_mis`
   (sparse-matvec implementation of the definitions).
2. **Pure-Python reference** — the per-edge loop
   :func:`repro.core.reference.reference_fully_marked_edges` must find no
   edge inside the returned set (catches bugs shared by the vectorised
   validator and the vectorised solvers).
3. **Independence oracle** — :func:`repro.core.oracle.oracle_certify_mis`
   re-derives independence *and* maximality through counted oracle
   queries only (the KUW §1 model), a third disjoint code path.

On top of per-solver validation the harness checks **metamorphic
invariants** with a rotating focus solver:

* *determinism* — same seed, same instance, bit-identical output;
* *edge-order independence* — a shuffled edge presentation canonicalises
  to an equal instance and yields bit-identical output;
* *relabeling* — solving under a universe permutation and mapping back
  yields a valid MIS of the original;
* *component split* — per-component solutions union to a valid MIS;
* *component merge* — each side of a solved disjoint self-union restricts
  to a valid MIS of the original.

And it additionally runs the oracle-driven KUW (`kuw_oracle`) as an
eighth subject, plus the case certificate (planted MIS) when present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.core import (
    beame_luby,
    greedy_mis,
    is_linear,
    karp_upfal_wigderson,
    linear_hypergraph_mis,
    luby_mis,
    permutation_bl,
    sbl,
)
from repro.core.oracle import IndependenceOracle, kuw_oracle, oracle_certify_mis
from repro.core.reference import reference_fully_marked_edges
from repro.hypergraph.components import connected_components, num_components
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.validate import (
    IndependenceViolation,
    MaximalityViolation,
    check_mis,
)
from repro.kernels import VALID_KERNELS, use_kernel
from repro.kernels.dispatch import dense_capable
from repro.qa.mutations import disjoint_union, relabel_vertices, shuffle_edge_order
from repro.util.rng import SeedLike

__all__ = [
    "Failure",
    "SolverSpec",
    "SOLVERS",
    "applicable_solvers",
    "run_case",
    "make_predicate",
]


@dataclass(frozen=True)
class Failure:
    """One differential check that did not hold.

    ``check`` is the invariant that broke (``independence``,
    ``maximality``, ``reference``, ``oracle``, ``determinism``,
    ``canonicalisation``, ``edge-order``, ``relabel``,
    ``component-split``, ``component-merge``, ``certificate``,
    ``backend-identity``, ``backend``, ``exception``); ``solver`` is the
    subject under test.
    """

    solver: str
    check: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.solver}/{self.check}] {self.detail}"


@dataclass(frozen=True)
class SolverSpec:
    """A differential subject: the callable plus its applicability test."""

    name: str
    fn: Callable
    applicable: Callable[[Hypergraph], bool]


def _always(_: Hypergraph) -> bool:
    return True


def _two_uniform(H: Hypergraph) -> bool:
    return all(len(e) == 2 for e in H.edges)


def _forced_kernel(fn: Callable, kernel: str) -> Callable:
    """Wrap a solver so every call runs under a pinned kernel backend."""

    def solve(H: Hypergraph, *args, **kwargs):
        with use_kernel(kernel):
            return fn(H, *args, **kwargs)

    return solve


#: The seven library solvers under differential test, plus one pinned-backend
#: BL subject per kernel (on dense-capable instances they exercise different
#: engines; the ``backend`` metamorphic check requires them bit-identical).
SOLVERS: tuple[SolverSpec, ...] = (
    SolverSpec("sbl", sbl, _always),
    SolverSpec("bl", beame_luby, _always),
    SolverSpec("kuw", karp_upfal_wigderson, _always),
    SolverSpec("greedy", greedy_mis, _always),
    SolverSpec("permutation", permutation_bl, _always),
    SolverSpec("luby", luby_mis, _two_uniform),
    SolverSpec("linear", linear_hypergraph_mis, is_linear),
    SolverSpec("bl-csr", _forced_kernel(beame_luby, "csr"), dense_capable),
    SolverSpec("bl-bitset", _forced_kernel(beame_luby, "bitset"), dense_capable),
    SolverSpec("bl-jit", _forced_kernel(beame_luby, "jit"), dense_capable),
)

_BY_NAME: Mapping[str, SolverSpec] = {s.name: s for s in SOLVERS}


def applicable_solvers(
    H: Hypergraph, names: list[str] | None = None
) -> list[SolverSpec]:
    """The subset of *names* (default: all seven) applicable to *H*."""
    specs = SOLVERS if names is None else tuple(_resolve(n) for n in names)
    return [s for s in specs if s.applicable(H)]


def _resolve(name: str) -> SolverSpec:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown solver {name!r}; known: {sorted(_BY_NAME)}") from None


def _solve(spec: SolverSpec, H: Hypergraph, seed: SeedLike) -> np.ndarray:
    result = spec.fn(H, seed=seed, trace=False)
    return np.asarray(result.independent_set, dtype=np.intp)


def _validate(
    H: Hypergraph, members: np.ndarray, solver: str, check_prefix: str = ""
) -> list[Failure]:
    """Structural validator + pure-Python reference, as failure records."""
    failures: list[Failure] = []
    try:
        check_mis(H, members)
    except IndependenceViolation as exc:
        failures.append(Failure(solver, check_prefix + "independence", str(exc)))
    except MaximalityViolation as exc:
        failures.append(Failure(solver, check_prefix + "maximality", str(exc)))
    inside = reference_fully_marked_edges(H, set(members.tolist()))
    if inside:
        failures.append(
            Failure(
                solver,
                check_prefix + "reference",
                f"pure-Python reference found contained edges {inside[:3]}",
            )
        )
    return failures


def run_case(
    H: Hypergraph,
    seed: SeedLike,
    *,
    solvers: list[str] | None = None,
    extra_solvers: Mapping[str, Callable] | None = None,
    focus_index: int = 0,
    metamorphic: bool = True,
    oracle: bool = True,
    certificate: np.ndarray | None = None,
    max_failures: int = 10,
) -> list[Failure]:
    """Run the full differential check battery on one instance.

    Parameters
    ----------
    H, seed:
        The instance and the solver seed (every solve in the battery uses
        the same seed, so a report is replayable from ``(H, seed)``).
    solvers:
        Solver-name subset (default: all seven).
    extra_solvers:
        Additional ``name -> callable`` subjects (assumed applicable to
        every instance) — the hook fault-injection tests and downstream
        users plug experimental solvers into.
    focus_index:
        Selects the solver that undergoes the expensive metamorphic
        battery (rotated by the engine across cases: ``case.index``).
    metamorphic, oracle:
        Toggle the invariant groups (both on in production fuzzing).
    certificate:
        A known-valid MIS of *H* (planted instances) to validate as well.
    max_failures:
        Stop collecting after this many failures.

    Returns
    -------
    list[Failure]
        Empty when every check held.
    """
    failures: list[Failure] = []
    specs = applicable_solvers(H, solvers)
    if extra_solvers:
        specs = specs + [SolverSpec(n, fn, _always) for n, fn in extra_solvers.items()]
    results: dict[str, np.ndarray] = {}

    if certificate is not None:
        failures += _validate(
            H, np.asarray(certificate, dtype=np.intp), "planted", "certificate-"
        )

    for spec in specs:
        if len(failures) >= max_failures:
            return failures[:max_failures]
        try:
            members = _solve(spec, H, seed)
        except Exception as exc:  # noqa: BLE001 — any crash is a finding
            failures.append(
                Failure(spec.name, "exception", f"{type(exc).__name__}: {exc}")
            )
            continue
        results[spec.name] = members
        failures += _validate(H, members, spec.name)

    # Dispatch contract: every BL kernel backend is bit-identical per seed.
    ref = results.get("bl-csr")
    if ref is not None:
        for name in ("bl", "bl-bitset", "bl-jit"):
            other = results.get(name)
            if other is not None and not np.array_equal(ref, other):
                failures.append(
                    Failure(
                        name,
                        "backend-identity",
                        f"diverges from bl-csr: {other.tolist()[:6]} vs "
                        f"{ref.tolist()[:6]}",
                    )
                )

    if oracle and len(failures) < max_failures:
        try:
            res = kuw_oracle(IndependenceOracle(H), seed=seed, trace=False)
            failures += _validate(H, np.asarray(res.independent_set), "kuw-oracle")
        except Exception as exc:  # noqa: BLE001
            failures.append(
                Failure("kuw-oracle", "exception", f"{type(exc).__name__}: {exc}")
            )

    focus: SolverSpec | None = None
    if specs:
        focus = specs[focus_index % len(specs)]
    if focus is not None and focus.name in results:
        base = results[focus.name]
        if oracle and len(failures) < max_failures:
            cert = oracle_certify_mis(H, base)
            if not (cert["independent"] and cert["maximal"]):
                failures.append(
                    Failure(
                        focus.name,
                        "oracle",
                        f"oracle refutes result: {cert['independent']=} "
                        f"{cert['maximal']=} addable={cert['addable'][:3]}",
                    )
                )
        if metamorphic and len(failures) < max_failures:
            failures += _metamorphic(H, seed, focus, base, max_failures - len(failures))
    return failures[:max_failures]


def _metamorphic(
    H: Hypergraph,
    seed: SeedLike,
    focus: SolverSpec,
    base: np.ndarray,
    budget: int,
) -> list[Failure]:
    failures: list[Failure] = []

    def done() -> bool:
        return len(failures) >= budget

    # Determinism: the same seed must reproduce the run bit-for-bit.
    rerun = _try(failures, focus, "determinism", lambda: _solve(focus, H, seed))
    if rerun is not None and not np.array_equal(rerun, base):
        failures.append(
            Failure(
                focus.name,
                "determinism",
                f"same seed, different sets: {base.tolist()[:6]}... vs "
                f"{rerun.tolist()[:6]}...",
            )
        )
    if done():
        return failures

    # Backend invariance: pinning any kernel must reproduce the ambient
    # dispatch result bit-for-bit (jit falls back to bitset without numba).
    for kern in (k for k in VALID_KERNELS if k != "auto"):
        out = _try(
            failures,
            focus,
            "backend",
            lambda k=kern: np.asarray(
                _forced_kernel(focus.fn, k)(H, seed=seed, trace=False).independent_set,
                dtype=np.intp,
            ),
        )
        if out is not None and not np.array_equal(out, base):
            failures.append(
                Failure(
                    focus.name,
                    "backend",
                    f"kernel={kern} diverges from ambient dispatch",
                )
            )
        if done():
            return failures

    # Edge-order independence: a shuffled presentation canonicalises to an
    # equal instance and must therefore solve identically.
    H_shuffled = shuffle_edge_order(H, seed=(seed, "qa-shuffle"))
    if H_shuffled != H:
        failures.append(
            Failure(
                focus.name,
                "canonicalisation",
                "edge-order shuffle produced an unequal hypergraph",
            )
        )
    else:
        out = _try(failures, focus, "edge-order", lambda: _solve(focus, H_shuffled, seed))
        if out is not None and not np.array_equal(out, base):
            failures.append(
                Failure(
                    focus.name,
                    "edge-order",
                    "solver output depends on edge presentation order",
                )
            )
    if done():
        return failures

    # Relabeling: vertex ids carry no structure.
    H_pi, pi = relabel_vertices(H, seed=(seed, "qa-relabel"))
    out = _try(failures, focus, "relabel", lambda: _solve(focus, H_pi, seed))
    if out is not None:
        inv = np.argsort(pi)
        failures += [
            Failure(focus.name, "relabel", str(f))
            for f in _validate(H, inv[out], focus.name)
        ][: budget - len(failures)]
    if done():
        return failures

    # Component split: per-component solutions union to an MIS of the whole.
    if H.num_edges and num_components(H) > 1:
        parts: list[np.ndarray] = []
        ok = True
        for comp in connected_components(H):
            out = _try(failures, focus, "component-split", lambda c=comp: _solve(focus, c, seed))
            if out is None:
                ok = False
                break
            parts.append(out)
        if ok:
            union = np.unique(np.concatenate(parts)) if parts else np.empty(0, np.intp)
            failures += [
                Failure(focus.name, "component-split", f.detail)
                for f in _validate(H, union, focus.name)
            ][: budget - len(failures)]
    if done():
        return failures

    # Component merge: each side of a disjoint self-union restricts to an
    # MIS of the original (kept to small universes — it doubles the work).
    if H.universe and H.universe <= 64:
        doubled = disjoint_union(H, H)
        out = _try(failures, focus, "component-merge", lambda: _solve(focus, doubled, seed))
        if out is not None:
            left = out[out < H.universe]
            right = out[out >= H.universe] - H.universe
            for side, members in (("left", left), ("right", right)):
                failures += [
                    Failure(focus.name, "component-merge", f"{side} side: {f.detail}")
                    for f in _validate(H, members, focus.name)
                ][: budget - len(failures)]
    return failures


def _try(
    failures: list[Failure], focus: SolverSpec, check: str, thunk: Callable[[], np.ndarray]
) -> np.ndarray | None:
    try:
        return thunk()
    except Exception as exc:  # noqa: BLE001
        failures.append(
            Failure(focus.name, check, f"exception {type(exc).__name__}: {exc}")
        )
        return None


def make_predicate(
    seed: SeedLike,
    *,
    solvers: list[str] | None = None,
    extra_solvers: Mapping[str, Callable] | None = None,
    focus_index: int = 0,
    metamorphic: bool = False,
    oracle: bool = False,
) -> Callable[[Hypergraph], bool]:
    """A shrinker predicate: ``True`` iff the battery still fails on *H*.

    Metamorphic/oracle groups default **off** here: the shrinker calls
    the predicate hundreds of times and the per-solver validators are
    what pin the original failure; narrow the solver list to the failing
    subject for the fastest shrinks.
    """

    def fails(H: Hypergraph) -> bool:
        return bool(
            run_case(
                H,
                seed,
                solvers=solvers,
                extra_solvers=extra_solvers,
                focus_index=focus_index,
                metamorphic=metamorphic,
                oracle=oracle,
                max_failures=1,
            )
        )

    return fails
