"""Stream-updates fuzz family: metamorphic checks for the dynamic engine.

A stream case is a starting hypergraph plus a deterministic sequence of
update batches (synthesised by :func:`repro.generators.churn_stream`,
carried JSON-ably in the case params so reproducers can replay without
regenerating).  The battery drives :class:`repro.dynamic.DynamicMIS`
through the whole sequence and checks the engine's contract:

* **certificate** — every intermediate state is validated by the engine
  itself (``validate=True``), and the final ``(H, I)`` passes
  :func:`check_mis` once more from the outside;
* **incremental-recompute** — the maintained set is *bit-identical* to
  the pinned recompute (full greedy along the engine's priority order on
  the final hypergraph);
* **strategy-identity** / **chain-identity** — forced repair, forced
  recompute and auto dispatch all land on the same set and the same
  content-hash chain;
* **backend-identity** — on dense-capable starts, replaying the stream
  under each forced ``REPRO_KERNEL`` backend yields the same final set.

Failing sequences are delta-debugged by :func:`shrink_steps` (ddmin over
batches, then over the events inside each batch) before being pinned as
reproducers; replays run with ``strict=False`` so shrunk sequences —
whose removals may now target absent edges — stay well-formed.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.validate import check_mis
from repro.kernels import use_kernel
from repro.kernels.dispatch import dense_capable
from repro.qa.differential import Failure

__all__ = [
    "Steps",
    "decode_steps",
    "encode_steps",
    "steps_from_params",
    "run_stream_battery",
    "make_stream_predicate",
    "shrink_steps",
]

Edge = tuple[int, ...]
#: One batch = (arrivals, departures); a case is a sequence of batches.
Steps = list[tuple[list[Edge], list[Edge]]]

#: Forced backends for the identity sweep (mirrors the differential
#: battery's bl-csr/bl-bitset/bl-jit subjects).
_BACKENDS = ("csr", "bitset", "jit")


def encode_steps(steps: Sequence[tuple[Sequence[Edge], Sequence[Edge]]]) -> list:
    """JSON-able form of an update sequence (lists all the way down)."""
    return [
        [[list(e) for e in adds], [list(e) for e in removes]]
        for adds, removes in steps
    ]


def decode_steps(raw: Sequence) -> Steps:
    """Inverse of :func:`encode_steps` (tuples all the way down)."""
    return [
        (
            [tuple(int(v) for v in e) for e in adds],
            [tuple(int(v) for v in e) for e in removes],
        )
        for adds, removes in raw
    ]


def steps_from_params(params: dict) -> Steps:
    """Extract the update sequence a stream case carries in its params."""
    return decode_steps(params["stream"]["steps"])


def _drive(
    H: Hypergraph, steps: Steps, engine_seed: int, strategy: str
):  # -> DynamicMIS (import deferred to avoid qa -> dynamic at module load)
    from repro.dynamic import DynamicMIS

    engine = DynamicMIS(H, seed=engine_seed, strategy=strategy, validate=True)
    for adds, removes in steps:
        engine.apply(adds, removes, strict=False)
    check_mis(engine.hypergraph, engine.independent_set)
    return engine


def run_stream_battery(
    H: Hypergraph, steps: Steps, engine_seed: int
) -> list[Failure]:
    """Run every stream check; returns the failures (empty = clean)."""
    failures: list[Failure] = []
    engines = {}
    for strategy in ("auto", "repair", "recompute"):
        try:
            engines[strategy] = _drive(H, steps, engine_seed, strategy)
        except Exception as exc:  # noqa: BLE001 — any crash is a finding
            failures.append(
                Failure(
                    f"dynamic-{strategy}",
                    "exception",
                    f"{type(exc).__name__}: {exc}",
                )
            )
    auto = engines.get("auto")
    if auto is None:
        return failures

    reference = auto.recompute_reference()
    if not np.array_equal(auto.independent_set, reference):
        failures.append(
            Failure(
                "dynamic-auto",
                "incremental-recompute",
                f"maintained |I|={auto.independent_set.size} differs from "
                f"pinned recompute |I|={reference.size} after "
                f"{len(steps)} batches",
            )
        )
    for strategy, engine in engines.items():
        if strategy == "auto":
            continue
        if not np.array_equal(engine.independent_set, auto.independent_set):
            failures.append(
                Failure(
                    f"dynamic-{strategy}",
                    "strategy-identity",
                    f"forced {strategy} produced a different set than auto "
                    f"(|I| {engine.independent_set.size} vs "
                    f"{auto.independent_set.size})",
                )
            )
        if engine.chain != auto.chain:
            failures.append(
                Failure(
                    f"dynamic-{strategy}",
                    "chain-identity",
                    f"hash chain diverged: {engine.chain[:12]}… vs "
                    f"{auto.chain[:12]}…",
                )
            )

    if dense_capable(H):
        for kernel in _BACKENDS:
            try:
                with use_kernel(kernel):
                    engine = _drive(H, steps, engine_seed, "auto")
            except Exception as exc:  # noqa: BLE001 — any crash is a finding
                failures.append(
                    Failure(
                        f"dynamic-{kernel}",
                        "exception",
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            if not np.array_equal(engine.independent_set, auto.independent_set):
                failures.append(
                    Failure(
                        f"dynamic-{kernel}",
                        "backend-identity",
                        f"final set under forced {kernel} differs from auto "
                        f"dispatch (|I| {engine.independent_set.size} vs "
                        f"{auto.independent_set.size})",
                    )
                )
    return failures


def make_stream_predicate(
    H: Hypergraph, engine_seed: int
) -> Callable[[Steps], bool]:
    """The shrink predicate: does this update sequence still fail?"""

    def fails(steps: Steps) -> bool:
        return bool(run_stream_battery(H, steps, engine_seed))

    return fails


def shrink_steps(
    H: Hypergraph,
    steps: Steps,
    fails: Callable[[Steps], bool],
    *,
    max_evals: int = 400,
) -> tuple[Steps, int]:
    """ddmin an update sequence while the failure persists.

    First removes whole batches at halving granularity, then drops single
    events (arrivals/departures) inside the surviving batches.  Returns
    ``(minimised steps, predicate evaluations)``.  Raises ``ValueError``
    when the input sequence does not fail — shrinking a passing sequence
    is caller error.
    """
    evals = 0

    def check(candidate: Steps) -> bool:
        nonlocal evals
        if evals >= max_evals:
            return False
        evals += 1
        try:
            return bool(fails(candidate))
        except Exception:  # noqa: BLE001 — a predicate crash is not a repro
            return False

    if not check(steps):
        raise ValueError("update sequence does not fail the predicate")

    # Batch-level ddmin (complement loop, halving granularity).
    current = list(steps)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        removed_any = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk :]
            if candidate != current and check(candidate):
                current = candidate
                removed_any = True
            else:
                start += chunk
        if removed_any:
            granularity = max(granularity - 1, 2)
        elif chunk == 1:
            break
        else:
            granularity = min(granularity * 2, len(current))

    # Event-level: drop single arrivals/departures while still failing.
    changed = True
    while changed and evals < max_evals:
        changed = False
        for i, (adds, removes) in enumerate(current):
            for kind, events in (("add", adds), ("remove", removes)):
                for j in range(len(events)):
                    new_adds = adds[:j] + adds[j + 1 :] if kind == "add" else adds
                    new_removes = (
                        removes[:j] + removes[j + 1 :] if kind == "remove" else removes
                    )
                    candidate = (
                        current[:i]
                        + [(new_adds, new_removes)]
                        + current[i + 1 :]
                    )
                    if check(candidate):
                        current = candidate
                        changed = True
                        break
                if changed:
                    break
            if changed:
                break
    # Empty batches left behind by event dropping are themselves droppable.
    pruned = [b for b in current if b[0] or b[1]]
    if pruned != current and check(pruned):
        current = pruned
    return current, evals
