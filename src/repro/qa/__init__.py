"""Correctness tooling: differential fuzzing, shrinking, regression replay.

The paper's guarantees are "with high probability" statements about
randomized solvers, so a single green test run proves little.  This
package turns the repo's property tests into a reusable engine:

* :mod:`repro.qa.fuzzer` — seeded instance synthesis over every
  generator family plus adversarial mutations;
* :mod:`repro.qa.differential` — the check battery (all seven solvers,
  structural validator, pure-Python reference, independence oracle,
  metamorphic invariants);
* :mod:`repro.qa.shrinker` — greedy delta debugging of failing
  instances;
* :mod:`repro.qa.regressions` — replayable ``.npz`` reproducers (the
  committed corpus under ``tests/regressions/`` is tier-1 tested);
* :mod:`repro.qa.streams` — the ``stream-updates`` family: metamorphic
  checks for the dynamic repair engine (incremental == pinned recompute,
  strategy/backend/chain identity) with a ddmin shrinker over update
  sequences;
* :mod:`repro.qa.engine` — the budgeted campaign loop behind
  ``repro fuzz``;
* :mod:`repro.qa.faults` — planted-bug solver wrappers that keep the
  subsystem itself honest.

See ``docs/fuzzing.md`` for the design and the triage playbook.
"""

from repro.qa.differential import (
    SOLVERS,
    Failure,
    SolverSpec,
    applicable_solvers,
    make_predicate,
    run_case,
)
from repro.qa.engine import Budget, CaseReport, FuzzReport, parse_budget, run_fuzz
from repro.qa.fuzzer import FAMILIES, FuzzCase, generate_case, iter_cases
from repro.qa.regressions import (
    load_reproducer,
    replay,
    replay_dir,
    save_reproducer,
)
from repro.qa.shrinker import ShrinkResult, shrink
from repro.qa.streams import (
    decode_steps,
    encode_steps,
    make_stream_predicate,
    run_stream_battery,
    shrink_steps,
    steps_from_params,
)

__all__ = [
    "Failure",
    "SolverSpec",
    "SOLVERS",
    "applicable_solvers",
    "run_case",
    "make_predicate",
    "FuzzCase",
    "FAMILIES",
    "generate_case",
    "iter_cases",
    "Budget",
    "parse_budget",
    "FuzzReport",
    "CaseReport",
    "run_fuzz",
    "ShrinkResult",
    "shrink",
    "save_reproducer",
    "load_reproducer",
    "replay",
    "replay_dir",
    "encode_steps",
    "decode_steps",
    "steps_from_params",
    "run_stream_battery",
    "make_stream_predicate",
    "shrink_steps",
]
