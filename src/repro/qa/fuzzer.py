"""Seeded instance fuzzer: generator families + adversarial mutations.

Case synthesis is a pure function of ``(seed, index)``:

* the **family** rotates deterministically through every generator in
  :data:`FAMILIES` (so a short run still covers random, linear, planted,
  structured, boundary and degenerate shapes — no coverage luck), and
* the family **parameters**, the **mutation pipeline** and the **solver
  seed** are drawn from a child RNG derived from ``(seed, "case", index)``
  via the repo-wide :mod:`repro.util.rng` plumbing.

That determinism is what makes failures replayable: a reproducer needs
only the fuzz seed and case index (or the shrunk instance itself, see
:mod:`repro.qa.regressions`) to rebuild the exact run.

Families marked as carrying a **certificate** (planted instances) attach
a known-valid MIS to the case; the differential harness validates the
certificate alongside the solver outputs, which catches validator bugs
as well as solver bugs.  Mutations that would invalidate the certificate
(singletons, isolated vertices, disjoint unions) are skipped on such
cases; duplicate and superset edges provably preserve it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.generators import (
    bounded_edges_instance,
    churn_stream,
    complete_uniform,
    matching_hypergraph,
    mixed_dimension_hypergraph,
    partial_steiner_triples,
    planted_mis_instance,
    random_linear_hypergraph,
    sharded_hypergraph,
    sparse_random_graph,
    star_hypergraph,
    sunflower,
    tight_cycle,
    tight_path,
    uniform_hypergraph,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.qa import mutations as mut
from repro.util.rng import SeedLike, as_generator

__all__ = ["FuzzCase", "FAMILIES", "generate_case", "iter_cases"]


@dataclass(frozen=True)
class FuzzCase:
    """One fuzz instance plus the provenance needed to rebuild it."""

    index: int
    family: str
    params: dict
    mutations: tuple[str, ...]
    solver_seed: int
    hypergraph: Hypergraph
    certificate: np.ndarray | None = field(default=None, compare=False)

    def describe(self) -> str:
        """One-line human summary (used by the CLI and failure manifests)."""
        H = self.hypergraph
        muts = "+".join(self.mutations) if self.mutations else "none"
        return (
            f"case {self.index}: family={self.family} n={H.num_vertices} "
            f"m={H.num_edges} dim={H.dimension} mutations={muts} "
            f"solver_seed={self.solver_seed}"
        )


def _build_uniform(rng: np.random.Generator) -> tuple[Hypergraph, None, dict]:
    n = int(rng.integers(6, 44))
    d = int(rng.integers(2, min(6, n + 1)))
    m = int(min(rng.integers(1, 2 * n), math.comb(n, d)))
    return uniform_hypergraph(n, m, d, seed=rng), None, {"n": n, "m": m, "d": d}


def _build_mixed(rng: np.random.Generator) -> tuple[Hypergraph, None, dict]:
    n = int(rng.integers(8, 40))
    dims = sorted({int(rng.integers(2, 6)) for _ in range(3)})
    m = int(rng.integers(1, 2 * n))
    H = mixed_dimension_hypergraph(n, m, dims, seed=rng)
    return H, None, {"n": n, "m": m, "dims": dims}


def _build_graph(rng: np.random.Generator) -> tuple[Hypergraph, None, dict]:
    n = int(rng.integers(4, 48))
    avg = float(rng.uniform(0.5, 4.0))
    return sparse_random_graph(n, avg, seed=rng), None, {"n": n, "avg_degree": round(avg, 2)}


def _build_linear(rng: np.random.Generator) -> tuple[Hypergraph, None, dict]:
    n = int(rng.integers(9, 36))
    d = int(rng.integers(2, 5))
    budget = (n * (n - 1) // 2) // (d * (d - 1) // 2)
    m = int(rng.integers(1, max(2, budget // 2)))
    try:
        H = random_linear_hypergraph(n, m, d, seed=rng)
    except RuntimeError:
        # Random probing stalled below the pair budget; fall back to the
        # deterministic packing (still a linear instance, still seeded).
        H = partial_steiner_triples(max(n, 3), seed=rng)
        return H, None, {"n": n, "fallback": "steiner"}
    return H, None, {"n": n, "m": m, "d": d}


def _build_steiner(rng: np.random.Generator) -> tuple[Hypergraph, None, dict]:
    n = int(rng.integers(7, 22))
    return partial_steiner_triples(n, seed=rng), None, {"n": n}


def _build_planted(rng: np.random.Generator) -> tuple[Hypergraph, np.ndarray, dict]:
    n = int(rng.integers(6, 32))
    d = int(rng.integers(2, 5))
    extra = int(rng.integers(0, 2 * n))
    frac = float(rng.uniform(0.25, 0.75))
    H, planted = planted_mis_instance(n, extra, d, seed=rng, planted_fraction=frac)
    return H, planted, {"n": n, "extra_edges": extra, "d": d, "fraction": round(frac, 2)}


def _build_bounded(rng: np.random.Generator) -> tuple[Hypergraph, None, dict]:
    n = int(rng.integers(16, 48))
    beta = float(rng.uniform(0.5, 5.0))
    H = bounded_edges_instance(n, seed=rng, beta_fraction=beta)
    return H, None, {"n": n, "beta_fraction": round(beta, 2)}


def _build_structured(rng: np.random.Generator) -> tuple[Hypergraph, None, dict]:
    kind = ["sunflower", "matching", "star", "complete", "tight_path", "tight_cycle"][
        int(rng.integers(0, 6))
    ]
    if kind == "sunflower":
        args = (int(rng.integers(1, 4)), int(rng.integers(2, 6)), int(rng.integers(1, 4)))
        H = sunflower(*args)
    elif kind == "matching":
        args = (int(rng.integers(0, 6)), int(rng.integers(2, 5)))
        H = matching_hypergraph(*args)
    elif kind == "star":
        args = (int(rng.integers(1, 7)), int(rng.integers(2, 5)))
        H = star_hypergraph(*args)
    elif kind == "complete":
        n = int(rng.integers(3, 8))
        args = (n, int(rng.integers(2, n + 1)))
        H = complete_uniform(*args)
    elif kind == "tight_path":
        n = int(rng.integers(4, 20))
        args = (n, int(rng.integers(2, min(6, n + 1))))
        H = tight_path(*args)
    else:
        n = int(rng.integers(4, 20))
        args = (n, int(rng.integers(2, min(6, n))))
        H = tight_cycle(*args)
    return H, None, {"kind": kind, "args": list(args)}


def _build_boundary(rng: np.random.Generator) -> tuple[Hypergraph, None, dict]:
    """Near-d-dimension boundary: edge sizes at or one below the vertex count."""
    n = int(rng.integers(3, 9))
    shape = int(rng.integers(0, 3))
    if shape == 0:
        # One edge spanning every vertex: any MIS is V minus one vertex.
        H = Hypergraph(n, [tuple(range(n))])
        kind = "full-edge"
    elif shape == 1:
        # All (n-1)-subsets: any MIS has exactly n-2 vertices.
        H = complete_uniform(n, n - 1)
        kind = "complete-(n-1)"
    else:
        # All (n-1)-subsets plus the full superset edge (cleanup bait).
        H = complete_uniform(n, n - 1).replace(
            edges=list(complete_uniform(n, n - 1).edges) + [tuple(range(n))]
        )
        kind = "complete-(n-1)+full"
    return H, None, {"n": n, "kind": kind}


def _build_dense(rng: np.random.Generator) -> tuple[Hypergraph, None, dict]:
    """Dense-kernel bias: small universe, dimension ≤ 3, high edge density.

    Every instance of this family routes through the dense (bitset/jit)
    engines under ``auto`` dispatch, so the differential battery exercises
    their cleanup machinery — duplicate collapse, containment discards,
    singleton reds — far more often than the uniform family would.
    """
    n = int(rng.integers(6, 64))
    d = int(rng.integers(2, 4))
    cap = math.comb(n, d)
    m = int(min(rng.integers(n, 4 * n + 1), cap))
    H = uniform_hypergraph(n, m, d, seed=rng)
    return H, None, {"n": n, "m": m, "d": d}


def _build_dense_high_dim(rng: np.random.Generator) -> tuple[Hypergraph, None, dict]:
    """Dense-kernel bias, dimension 4–5: the frontier-engine regime.

    Under ``auto`` dispatch these route to the mixed-dimension frontier
    engine (``bl_frontier``) — the path where cleanup must converge past
    one pass (a containment discard can expose a new duplicate, which can
    expose a new singleton) — so the differential battery hammers exactly
    the generalized fixed-point loop.
    """
    n = int(rng.integers(12, 49))
    d = int(rng.integers(4, 6))
    cap = math.comb(n, d)
    m = int(min(rng.integers(n, 3 * n + 1), cap))
    H = uniform_hypergraph(n, m, d, seed=rng)
    return H, None, {"n": n, "m": m, "d": d}


def _build_dense_wide(rng: np.random.Generator) -> tuple[Hypergraph, None, dict]:
    """Dense-kernel bias, universe 3k–8k: the big-universe regime.

    Beyond the old 2048-vertex ceiling but inside the widened envelope,
    with few edges relative to the universe — the live-stripe shape the
    tiled layout targets.  Keeps per-case solves fast while still walking
    the wide-universe code paths (sentinel padding, stripe clipping,
    sparse-active commits).
    """
    n = int(rng.integers(3000, 8001))
    d = int(rng.integers(2, 4))
    m = int(rng.integers(64, 257))
    H = uniform_hypergraph(n, m, d, seed=rng)
    return H, None, {"n": n, "m": m, "d": d}


def _build_stream(rng: np.random.Generator) -> tuple[Hypergraph, None, dict]:
    """Stream-updates family: a starting instance plus an update sequence.

    The case's hypergraph is the *initial* state; the churn batches ride
    in ``params["stream"]["steps"]`` (JSON-ably encoded) and the battery
    routes to :func:`repro.qa.streams.run_stream_battery` instead of the
    one-shot differential checks.  Mutations applied after this builder
    only *add* structure, so departures generated here stay applicable
    (and replays run lenient regardless).
    """
    from repro.qa.streams import encode_steps

    blocks = int(rng.integers(2, 6))
    block_n = int(rng.integers(5, 12))
    d = int(rng.integers(2, min(4, block_n)))
    block_m = int(rng.integers(3, 2 * block_n))
    H = sharded_hypergraph(
        blocks, block_n, block_m, d, seed=int(rng.integers(2**31))
    )
    steps = int(rng.integers(1, 8))
    batch = int(rng.integers(1, 5))
    batches = churn_stream(
        H,
        steps,
        seed=int(rng.integers(2**31)),
        batch_edges=batch,
        arrival_fraction=float(rng.uniform(0.3, 0.8)),
        hot_fraction=float(rng.uniform(0.0, 1.0)),
        hot_window=float(rng.uniform(0.05, 0.3)),
        adversarial_fraction=float(rng.uniform(0.0, 0.4)),
    )
    params = {
        "blocks": blocks,
        "block_n": block_n,
        "block_m": block_m,
        "d": d,
        "stream": {
            "steps": encode_steps([(list(b.add_edges), list(b.remove_edges)) for b in batches])
        },
    }
    return H, None, params


def _build_degenerate(rng: np.random.Generator) -> tuple[Hypergraph, None, dict]:
    shape = int(rng.integers(0, 5))
    if shape == 0:
        return Hypergraph(0), None, {"kind": "empty-universe"}
    if shape == 1:
        return Hypergraph(1), None, {"kind": "one-vertex"}
    if shape == 2:
        n = int(rng.integers(2, 16))
        return Hypergraph(n), None, {"kind": "edgeless", "n": n}
    if shape == 3:
        n = int(rng.integers(1, 10))
        return (
            Hypergraph(n, [(i,) for i in range(n)]),
            None,
            {"kind": "all-singletons", "n": n},
        )
    n = int(rng.integers(2, 12))
    k = int(rng.integers(0, n))
    # Active set strictly smaller than the universe (dead id ranges).
    verts = np.sort(rng.choice(n, size=max(1, k), replace=False))
    return (
        Hypergraph(n, [], vertices=verts),
        None,
        {"kind": "sparse-active", "n": n, "active": int(verts.size)},
    )


#: Family rotation — index ``i`` draws its instance from
#: ``FAMILIES[i % len(FAMILIES)]``, so every window of ``len(FAMILIES)``
#: consecutive cases covers every family once.
FAMILIES: tuple[tuple[str, Callable], ...] = (
    ("uniform", _build_uniform),
    ("mixed", _build_mixed),
    ("graph", _build_graph),
    ("linear", _build_linear),
    ("planted", _build_planted),
    ("bounded", _build_bounded),
    ("structured", _build_structured),
    ("boundary", _build_boundary),
    ("degenerate", _build_degenerate),
    ("steiner", _build_steiner),
    ("dense", _build_dense),
    ("dense-dim45", _build_dense_high_dim),
    ("dense-wide", _build_dense_wide),
    ("stream-updates", _build_stream),
)

#: Mutations safe to apply when the case carries a planted certificate:
#: duplicates leave the instance equal, supersets add only redundant
#: constraints (cannot break independence, cannot unblock an outsider).
_CERT_SAFE = {"dup", "superset"}


def _mutate(
    H: Hypergraph, rng: np.random.Generator, has_certificate: bool
) -> tuple[Hypergraph, tuple[str, ...]]:
    applied: list[str] = []
    if H.num_edges and rng.random() < 0.35:
        H = mut.add_duplicate_edges(H, int(rng.integers(1, 4)), seed=rng)
        applied.append("dup")
    if H.num_edges and rng.random() < 0.35:
        H = mut.add_superset_edges(H, int(rng.integers(1, 4)), seed=rng)
        applied.append("superset")
    if not has_certificate:
        if H.num_vertices and rng.random() < 0.25:
            H = mut.add_singleton_edges(H, int(rng.integers(1, 3)), seed=rng)
            applied.append("singleton")
        if rng.random() < 0.25:
            H = mut.add_isolated_vertices(H, int(rng.integers(1, 5)))
            applied.append("isolated")
        if rng.random() < 0.2:
            blocks = int(rng.integers(1, 4))
            H = mut.disjoint_union(H, matching_hypergraph(blocks, int(rng.integers(2, 4))))
            applied.append("disjoint")
    return H, tuple(applied)


def generate_case(seed: SeedLike, index: int) -> FuzzCase:
    """Synthesise fuzz case *index* of the stream identified by *seed*.

    Pure: the same ``(seed, index)`` always yields the same case, with no
    dependence on which other cases were generated.
    """
    if seed is None:
        seed = 0
    rng = as_generator((seed, "case", index))
    name, build = FAMILIES[index % len(FAMILIES)]
    H, certificate, params = build(rng)
    H, applied = _mutate(H, rng, certificate is not None)
    solver_seed = int(rng.integers(0, 2**31 - 1))
    return FuzzCase(
        index=index,
        family=name,
        params=params,
        mutations=applied,
        solver_seed=solver_seed,
        hypergraph=H,
        certificate=certificate,
    )


def iter_cases(seed: SeedLike, start: int = 0) -> Iterator[FuzzCase]:
    """Infinite deterministic case stream (the engine applies the budget)."""
    index = start
    while True:
        yield generate_case(seed, index)
        index += 1
