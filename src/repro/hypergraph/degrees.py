"""Kelsen's degree structures.

Section 3 of the paper defines, for a hypergraph ``H`` of dimension ``d``,
a non-empty vertex set ``x`` and ``1 ≤ j ≤ d − |x|``:

* ``N_j(x, H)`` — the sets ``y`` with ``x ∪ y ∈ E``, ``x ∩ y = ∅``,
  ``|y| = j`` (equivalently: edges of size ``|x| + j`` containing ``x``),
* the *normalised degree* ``d_j(x, H) = |N_j(x, H)|^(1/j)``,
* ``Δ_i(H) = max { d_{i−|x|}(x, H) : x ⊆ V, 0 < |x| < i }``,
* ``Δ(H) = max { Δ_i(H) : 2 ≤ i ≤ d }``,

and the potential values ``v_i(H)`` defined inductively downward from
``v_d(H) = Δ_d(H)`` by ``v_i(H) = max(Δ_i(H), (log n)^{f(i)} · v_{i+1}(H))``,
with thresholds ``T_j = v_2(H) / (log n)^{F(j−1)}``.

Complexity note: only sets ``x`` that are subsets of an actual edge have a
non-zero degree, so the maxima are computed by enumerating the non-empty
proper subsets of each edge — ``O(m · 2^d)``.  That is exactly the regime
the paper targets (``d`` at most barely super-constant); a guard raises for
``d`` beyond :data:`MAX_ENUMERABLE_DIMENSION` rather than hanging.

Two fast paths keep the Δ maxima off the per-round critical path:

* :func:`degree_profile` computes ``Δ_i(H)`` by *vectorised* subset
  enumeration (gather all ``s``-subsets of the size-``i`` edges into one
  integer matrix, lex-sort, take the longest run) and materialises the
  explicit ``(x, i) → count`` mapping only if someone reads ``.counts``;
* :class:`DeltaTracker` maintains the same maxima *incrementally* under
  edge deletions/insertions, so BL rounds pay O(changed · 2^d) instead of
  O(m · 2^d) (see :mod:`repro.core.bl`).
"""

from __future__ import annotations

import itertools
import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "MAX_ENUMERABLE_DIMENSION",
    "neighborhood_count",
    "neighborhood",
    "normalized_degree",
    "Delta_i",
    "Delta",
    "degree_profile",
    "DegreeProfile",
    "DeltaTracker",
    "kelsen_potentials",
    "KelsenPotentials",
]

#: Enumerating all subsets of an edge is 2^d; beyond this we refuse.
MAX_ENUMERABLE_DIMENSION = 22


def neighborhood(H: Hypergraph, x: Iterable[int], j: int) -> list[tuple[int, ...]]:
    """``N_j(x, H)`` as an explicit list of ``j``-sets.

    Direct definition; intended for small instances and as the reference
    against which the profile-based computation is differentially tested.
    """
    xs = frozenset(int(v) for v in x)
    if not xs:
        raise ValueError("x must be non-empty")
    if j < 1:
        raise ValueError(f"j must be >= 1: {j}")
    target = len(xs) + j
    out = []
    for e in H.edges:
        if len(e) == target and xs.issubset(e):
            out.append(tuple(sorted(set(e) - xs)))
    return out


def neighborhood_count(H: Hypergraph, x: Iterable[int], j: int) -> int:
    """``|N_j(x, H)|`` — computed via the incidence lists of the vertices of x.

    Intersects the edge lists of the members of *x* (starting from the
    least-loaded one) instead of scanning all edges.
    """
    xs = sorted(set(int(v) for v in x))
    if not xs:
        raise ValueError("x must be non-empty")
    if j < 1:
        raise ValueError(f"j must be >= 1: {j}")
    adj = H.vertex_to_edges()
    lists = [adj.get(v) for v in xs]
    if any(lst is None for lst in lists):
        return 0
    lists.sort(key=len)
    common = set(lists[0])
    for lst in lists[1:]:
        common.intersection_update(lst)
        if not common:
            return 0
    target = len(xs) + j
    edges = H.edges
    return sum(1 for i in common if len(edges[i]) == target)


def normalized_degree(H: Hypergraph, x: Iterable[int], j: int) -> float:
    """``d_j(x, H) = |N_j(x, H)|^{1/j}``."""
    return neighborhood_count(H, x, j) ** (1.0 / j)


def _subset_counts(edges: tuple[tuple[int, ...], ...]) -> Counter:
    """The explicit ``(x, i) → |N_{i−|x|}(x, H)|`` mapping (reference path)."""
    counts: Counter = Counter()
    combos = itertools.combinations
    for e in edges:
        i = len(e)
        if i < 2:
            continue
        for size in range(1, i):
            for x in combos(e, size):
                counts[(x, i)] += 1
    return counts


class _LazySubsetCounts(Mapping):
    """The ``(x, i) → count`` mapping, materialised on first access.

    The Δ maxima are computed without it (vectorised); only consumers that
    genuinely need per-subset counts (migration instrumentation, tests)
    pay for the Python enumeration.
    """

    __slots__ = ("_hypergraph", "_counter")

    def __init__(self, H: Hypergraph):
        self._hypergraph = H
        self._counter: Counter | None = None

    def _materialise(self) -> Counter:
        if self._counter is None:
            self._counter = _subset_counts(self._hypergraph.edges)
            self._hypergraph = None  # release; the counter is now the state
        return self._counter

    def __getitem__(self, key):
        return self._materialise()[key]

    def __iter__(self):
        return iter(self._materialise())

    def __len__(self) -> int:
        return len(self._materialise())

    def __contains__(self, key) -> bool:
        return key in self._materialise()


def _max_row_multiplicity(A: np.ndarray) -> int:
    """Largest number of identical rows in integer matrix *A* (lex-sort + runs)."""
    k = A.shape[0]
    if k <= 1:
        return k
    order = np.lexsort(A.T[::-1])
    As = A[order]
    new = np.empty(k, dtype=bool)
    new[0] = True
    new[1:] = (As[1:] != As[:-1]).any(axis=1)
    starts = np.flatnonzero(new)
    runs = np.diff(np.append(starts, k))
    return int(runs.max())


def _delta_by_size(H: Hypergraph) -> dict[int, float]:
    """``Δ_i(H)`` per edge size, by vectorised subset gathering.

    For each edge size ``i`` and subset size ``s``, every ``s``-subset of
    every size-``i`` edge becomes one row of an integer matrix; the count
    of the most frequent ``x`` is the longest equal-row run after a
    lex-sort, and ``Δ_i`` contribution is ``count^{1/(i−s)}``.
    """
    store = H.store
    sizes = H.edge_sizes()
    indptr = store.indptr
    indices = store.indices
    out: dict[int, float] = {}
    for i_np in np.unique(sizes):
        i = int(i_np)
        if i < 2:
            continue
        sel = np.flatnonzero(sizes == i_np)
        starts = indptr[sel]
        E = indices[starts[:, None] + np.arange(i)]
        best = 0.0
        for s in range(1, i):
            combos = np.asarray(list(itertools.combinations(range(i), s)), dtype=np.intp)
            A = E[:, combos].reshape(-1, s)
            c = _max_row_multiplicity(A)
            val = c ** (1.0 / (i - s))
            if val > best:
                best = val
        out[i] = best
    return out


@dataclass(frozen=True)
class DegreeProfile:
    """All per-(x, edge-size) counts needed by the Δ and potential maxima.

    Attributes
    ----------
    counts:
        Mapping ``(x, i) → |N_{i−|x|}(x, H)|`` over all non-empty proper
        subsets ``x`` of edges and all edge sizes ``i`` present in ``H``.
        Only non-zero entries are stored.  Materialised lazily — the Δ
        maxima below are computed without it.
    dimension:
        ``dim(H)`` at profile time.
    """

    counts: Mapping[tuple[tuple[int, ...], int], int]
    dimension: int
    delta_by_size: Mapping[int, float] = field(default_factory=dict)

    def delta_i(self, i: int) -> float:
        """``Δ_i(H)`` from the cached per-size maxima (0.0 when no size-i edges)."""
        return self.delta_by_size.get(i, 0.0)

    def delta(self) -> float:
        """``Δ(H) = max_i Δ_i(H)`` (0.0 for an edgeless hypergraph)."""
        return max(self.delta_by_size.values(), default=0.0)


def degree_profile(H: Hypergraph) -> DegreeProfile:
    """Compute the Δ maxima (vectorised) with the subset counts on demand.

    Returns a :class:`DegreeProfile` carrying the per-dimension maxima
    ``Δ_i(H)``; the explicit ``(x, i)`` count mapping materialises lazily
    on first access.
    """
    d = H.dimension
    if d > MAX_ENUMERABLE_DIMENSION:
        raise ValueError(
            f"dimension {d} exceeds enumerable bound {MAX_ENUMERABLE_DIMENSION}; "
            "degree maxima would take 2^d per edge"
        )
    return DegreeProfile(
        counts=_LazySubsetCounts(H), dimension=d, delta_by_size=_delta_by_size(H)
    )


class DeltaTracker:
    """Incrementally maintained ``Δ_i`` maxima under edge updates.

    BL's marking probability needs ``Δ(H)`` every round, but successive
    round hypergraphs differ only in the edges the trim touched.  The
    tracker keeps every subset multiplicity plus, per ``(i, s)``, a
    histogram of those multiplicities, so a round costs
    O(|changed edges| · 2^d) — the *restriction* analogue of the
    identity-only profile cache it replaces.  The histograms have at most
    max-multiplicity distinct keys, so the per-round max is a plain
    ``max(hist)``.  Bulk construction is vectorised (same subset-gather as
    :func:`degree_profile`).  Differentially tested against
    :func:`degree_profile`.
    """

    __slots__ = ("_counts", "_hist")

    def __init__(self) -> None:
        # (x, i) -> multiplicity; (i, s) -> {multiplicity -> #subsets at it}
        self._counts: dict[tuple[tuple[int, ...], int], int] = {}
        self._hist: dict[tuple[int, int], dict[int, int]] = {}

    @classmethod
    def from_hypergraph(cls, H: Hypergraph) -> "DeltaTracker":
        if H.dimension > MAX_ENUMERABLE_DIMENSION:
            raise ValueError(
                f"dimension {H.dimension} exceeds enumerable bound "
                f"{MAX_ENUMERABLE_DIMENSION}"
            )
        tracker = cls()
        store = H.store
        sizes = store.sizes()
        indptr, indices = store.indptr, store.indices
        counts = tracker._counts
        for i_np in np.unique(sizes):
            i = int(i_np)
            if i < 2:
                continue
            sel = np.flatnonzero(sizes == i_np)
            starts = indptr[sel]
            E = indices[starts[:, None] + np.arange(i)]
            for s in range(1, i):
                combos = np.asarray(
                    list(itertools.combinations(range(i), s)), dtype=np.intp
                )
                A = E[:, combos].reshape(-1, s)
                k = A.shape[0]
                order = np.lexsort(A.T[::-1])
                As = A[order]
                new = np.empty(k, dtype=bool)
                new[0] = True
                if k > 1:
                    new[1:] = (As[1:] != As[:-1]).any(axis=1)
                run_starts = np.flatnonzero(new)
                runs = np.diff(np.append(run_starts, k))
                hist_arr = np.bincount(runs)
                tracker._hist[(i, s)] = {
                    int(v): int(hist_arr[v]) for v in np.flatnonzero(hist_arr)
                }
                for row, c in zip(As[run_starts].tolist(), runs.tolist()):
                    counts[(tuple(row), i)] = c
        return tracker

    def add_edges(self, edges: Iterable[tuple[int, ...]]) -> None:
        self._update(edges, +1)

    def remove_edges(self, edges: Iterable[tuple[int, ...]]) -> None:
        self._update(edges, -1)

    def _update(self, edges: Iterable[tuple[int, ...]], delta: int) -> None:
        counts = self._counts
        hists = self._hist
        combinations = itertools.combinations
        for e in edges:
            i = len(e)
            if i < 2:
                continue
            for s in range(1, i):
                hist = hists.get((i, s))
                if hist is None:
                    hist = hists[(i, s)] = {}
                for x in combinations(e, s):
                    key = (x, i)
                    old = counts.get(key, 0)
                    new = old + delta
                    if old:
                        left = hist[old] - 1
                        if left:
                            hist[old] = left
                        else:
                            del hist[old]
                    if new:
                        counts[key] = new
                        hist[new] = hist.get(new, 0) + 1
                    else:
                        del counts[key]

    @property
    def delta_by_size(self) -> dict[int, float]:
        out: dict[int, float] = {}
        for (i, s), hist in self._hist.items():
            if not hist:
                continue
            val = max(hist) ** (1.0 / (i - s))
            if val > out.get(i, 0.0):
                out[i] = val
        return out

    def delta_i(self, i: int) -> float:
        return self.delta_by_size.get(i, 0.0)

    def delta(self) -> float:
        return max(self.delta_by_size.values(), default=0.0)


def Delta_i(H: Hypergraph, i: int, profile: DegreeProfile | None = None) -> float:
    """``Δ_i(H)`` — maximum normalised degree with respect to size-``i`` edges."""
    if i < 2:
        raise ValueError(f"Δ_i defined for i >= 2: {i}")
    prof = profile if profile is not None else degree_profile(H)
    return prof.delta_i(i)


def Delta(H: Hypergraph, profile: DegreeProfile | None = None) -> float:
    """``Δ(H)`` — the maximum normalised degree over all edge sizes.

    This is the quantity that sets the BL marking probability
    ``p = 1 / (2^{d+1} Δ(H))``.
    """
    prof = profile if profile is not None else degree_profile(H)
    return prof.delta()


@dataclass(frozen=True)
class KelsenPotentials:
    """The values ``v_i(H)`` and thresholds ``T_j`` of Kelsen's analysis."""

    v: Mapping[int, float]
    T: Mapping[int, float]
    log_n: float
    dimension: int

    def v2(self) -> float:
        """The universal threshold ``v_2(H)`` (0.0 when dim < 2)."""
        return self.v.get(2, 0.0)


def kelsen_potentials(
    H: Hypergraph,
    f: Callable[[int], float],
    F: Callable[[int], float],
    *,
    log_n: float | None = None,
    profile: DegreeProfile | None = None,
) -> KelsenPotentials:
    """Compute ``v_i(H)`` and ``T_j`` for the scaling function *f* (with prefix sums *F*).

    Parameters
    ----------
    H:
        The hypergraph.
    f, F:
        The scaling recurrence and its prefix ``F(i) = Σ_{j=2..i} f(j)``
        (with ``F(1) = 0``); pass the paper's d²-variant from
        :mod:`repro.theory.recurrences` or Kelsen's original.
    log_n:
        Base-2 log of the vertex count to use; defaults to
        ``log2(max(n, 3))`` so that tiny instances stay meaningful.
    profile:
        Optional precomputed :func:`degree_profile`.
    """
    d = H.dimension
    prof = profile if profile is not None else degree_profile(H)
    if log_n is None:
        log_n = math.log2(max(H.num_vertices, 3))
    v: dict[int, float] = {}
    if d >= 2:
        v[d] = prof.delta_i(d)
        for i in range(d - 1, 1, -1):
            v[i] = max(prof.delta_i(i), (log_n ** f(i)) * v[i + 1])
    T: dict[int, float] = {}
    if 2 in v:
        for j in range(2, d + 1):
            T[j] = v[2] / (log_n ** F(j - 1))
    return KelsenPotentials(v=v, T=T, log_n=log_n, dimension=d)
