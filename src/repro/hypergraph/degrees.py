"""Kelsen's degree structures.

Section 3 of the paper defines, for a hypergraph ``H`` of dimension ``d``,
a non-empty vertex set ``x`` and ``1 ≤ j ≤ d − |x|``:

* ``N_j(x, H)`` — the sets ``y`` with ``x ∪ y ∈ E``, ``x ∩ y = ∅``,
  ``|y| = j`` (equivalently: edges of size ``|x| + j`` containing ``x``),
* the *normalised degree* ``d_j(x, H) = |N_j(x, H)|^(1/j)``,
* ``Δ_i(H) = max { d_{i−|x|}(x, H) : x ⊆ V, 0 < |x| < i }``,
* ``Δ(H) = max { Δ_i(H) : 2 ≤ i ≤ d }``,

and the potential values ``v_i(H)`` defined inductively downward from
``v_d(H) = Δ_d(H)`` by ``v_i(H) = max(Δ_i(H), (log n)^{f(i)} · v_{i+1}(H))``,
with thresholds ``T_j = v_2(H) / (log n)^{F(j−1)}``.

Complexity note: only sets ``x`` that are subsets of an actual edge have a
non-zero degree, so the maxima are computed by enumerating the non-empty
proper subsets of each edge — ``O(m · 2^d)``.  That is exactly the regime
the paper targets (``d`` at most barely super-constant); a guard raises for
``d`` beyond :data:`MAX_ENUMERABLE_DIMENSION` rather than hanging.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "MAX_ENUMERABLE_DIMENSION",
    "neighborhood_count",
    "neighborhood",
    "normalized_degree",
    "Delta_i",
    "Delta",
    "degree_profile",
    "DegreeProfile",
    "kelsen_potentials",
    "KelsenPotentials",
]

#: Enumerating all subsets of an edge is 2^d; beyond this we refuse.
MAX_ENUMERABLE_DIMENSION = 22


def neighborhood(H: Hypergraph, x: Iterable[int], j: int) -> list[tuple[int, ...]]:
    """``N_j(x, H)`` as an explicit list of ``j``-sets.

    Direct definition; intended for small instances and as the reference
    against which the profile-based computation is differentially tested.
    """
    xs = frozenset(int(v) for v in x)
    if not xs:
        raise ValueError("x must be non-empty")
    if j < 1:
        raise ValueError(f"j must be >= 1: {j}")
    target = len(xs) + j
    out = []
    for e in H.edges:
        if len(e) == target and xs.issubset(e):
            out.append(tuple(sorted(set(e) - xs)))
    return out


def neighborhood_count(H: Hypergraph, x: Iterable[int], j: int) -> int:
    """``|N_j(x, H)|`` — computed via the incidence lists of the vertices of x.

    Intersects the edge lists of the members of *x* (starting from the
    least-loaded one) instead of scanning all edges.
    """
    xs = sorted(set(int(v) for v in x))
    if not xs:
        raise ValueError("x must be non-empty")
    if j < 1:
        raise ValueError(f"j must be >= 1: {j}")
    adj = H.vertex_to_edges()
    lists = [adj.get(v) for v in xs]
    if any(lst is None for lst in lists):
        return 0
    lists.sort(key=len)
    common = set(lists[0])
    for lst in lists[1:]:
        common.intersection_update(lst)
        if not common:
            return 0
    target = len(xs) + j
    edges = H.edges
    return sum(1 for i in common if len(edges[i]) == target)


def normalized_degree(H: Hypergraph, x: Iterable[int], j: int) -> float:
    """``d_j(x, H) = |N_j(x, H)|^{1/j}``."""
    return neighborhood_count(H, x, j) ** (1.0 / j)


@dataclass(frozen=True)
class DegreeProfile:
    """All per-(x, edge-size) counts needed by the Δ and potential maxima.

    Attributes
    ----------
    counts:
        Mapping ``(x, i) → |N_{i−|x|}(x, H)|`` over all non-empty proper
        subsets ``x`` of edges and all edge sizes ``i`` present in ``H``.
        Only non-zero entries are stored.
    dimension:
        ``dim(H)`` at profile time.
    """

    counts: Mapping[tuple[tuple[int, ...], int], int]
    dimension: int
    delta_by_size: Mapping[int, float] = field(default_factory=dict)

    def delta_i(self, i: int) -> float:
        """``Δ_i(H)`` from the cached per-size maxima (0.0 when no size-i edges)."""
        return self.delta_by_size.get(i, 0.0)

    def delta(self) -> float:
        """``Δ(H) = max_i Δ_i(H)`` (0.0 for an edgeless hypergraph)."""
        return max(self.delta_by_size.values(), default=0.0)


def degree_profile(H: Hypergraph) -> DegreeProfile:
    """Enumerate every non-empty proper subset of every edge once.

    Returns a :class:`DegreeProfile` carrying the ``(x, i)`` counts and the
    per-dimension maxima ``Δ_i(H)``.
    """
    d = H.dimension
    if d > MAX_ENUMERABLE_DIMENSION:
        raise ValueError(
            f"dimension {d} exceeds enumerable bound {MAX_ENUMERABLE_DIMENSION}; "
            "degree maxima would take 2^d per edge"
        )
    from collections import Counter

    counts: Counter = Counter()
    combos = itertools.combinations
    for e in H.edges:
        i = len(e)
        if i < 2:
            continue
        for size in range(1, i):
            for x in combos(e, size):
                counts[(x, i)] += 1
    delta_by_size: dict[int, float] = {}
    for (x, i), c in counts.items():
        j = i - len(x)
        val = c ** (1.0 / j)
        if val > delta_by_size.get(i, 0.0):
            delta_by_size[i] = val
    return DegreeProfile(counts=counts, dimension=d, delta_by_size=delta_by_size)


def Delta_i(H: Hypergraph, i: int, profile: DegreeProfile | None = None) -> float:
    """``Δ_i(H)`` — maximum normalised degree with respect to size-``i`` edges."""
    if i < 2:
        raise ValueError(f"Δ_i defined for i >= 2: {i}")
    prof = profile if profile is not None else degree_profile(H)
    return prof.delta_i(i)


def Delta(H: Hypergraph, profile: DegreeProfile | None = None) -> float:
    """``Δ(H)`` — the maximum normalised degree over all edge sizes.

    This is the quantity that sets the BL marking probability
    ``p = 1 / (2^{d+1} Δ(H))``.
    """
    prof = profile if profile is not None else degree_profile(H)
    return prof.delta()


@dataclass(frozen=True)
class KelsenPotentials:
    """The values ``v_i(H)`` and thresholds ``T_j`` of Kelsen's analysis."""

    v: Mapping[int, float]
    T: Mapping[int, float]
    log_n: float
    dimension: int

    def v2(self) -> float:
        """The universal threshold ``v_2(H)`` (0.0 when dim < 2)."""
        return self.v.get(2, 0.0)


def kelsen_potentials(
    H: Hypergraph,
    f: Callable[[int], float],
    F: Callable[[int], float],
    *,
    log_n: float | None = None,
    profile: DegreeProfile | None = None,
) -> KelsenPotentials:
    """Compute ``v_i(H)`` and ``T_j`` for the scaling function *f* (with prefix sums *F*).

    Parameters
    ----------
    H:
        The hypergraph.
    f, F:
        The scaling recurrence and its prefix ``F(i) = Σ_{j=2..i} f(j)``
        (with ``F(1) = 0``); pass the paper's d²-variant from
        :mod:`repro.theory.recurrences` or Kelsen's original.
    log_n:
        Base-2 log of the vertex count to use; defaults to
        ``log2(max(n, 3))`` so that tiny instances stay meaningful.
    profile:
        Optional precomputed :func:`degree_profile`.
    """
    d = H.dimension
    prof = profile if profile is not None else degree_profile(H)
    if log_n is None:
        log_n = math.log2(max(H.num_vertices, 3))
    v: dict[int, float] = {}
    if d >= 2:
        v[d] = prof.delta_i(d)
        for i in range(d - 1, 1, -1):
            v[i] = max(prof.delta_i(i), (log_n ** f(i)) * v[i + 1])
    T: dict[int, float] = {}
    if 2 in v:
        for j in range(2, d + 1):
            T[j] = v[2] / (log_n ** F(j - 1))
    return KelsenPotentials(v=v, T=T, log_n=log_n, dimension=d)
