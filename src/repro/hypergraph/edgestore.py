"""CSR-native edge storage — the array substrate under :class:`Hypergraph`.

Edges are held as a ragged CSR pair ``(indptr, indices)``: edge ``i`` is
``indices[indptr[i]:indptr[i+1]]``.  The **canonical invariant** is

* every edge strictly increasing (sorted, no repeated vertex),
* no empty edges,
* edges lexicographically sorted as tuples, no duplicate edges.

Canonicalisation is vectorised: one ``np.lexsort`` over (row, vertex) sorts
and dedups within edges, and one ``np.lexsort`` over a sentinel-padded edge
matrix sorts and dedups the edge list — no per-edge Python.  Python-tuple
comparison order is reproduced exactly by padding short edges with ``-1``
(a missing position compares *smaller* than any vertex, so a prefix sorts
before its extensions, just as ``(0, 1) < (0, 1, 2)``).

The store is the linchpin of the trusted-construction fast path
(:meth:`Hypergraph._from_arrays`): every operation here that only *selects*
edges (masking, component splits) preserves the invariant by construction,
and :meth:`trim` restores it with a single re-sort that skips the
within-edge pass (removing vertices from a sorted edge keeps it sorted).
Those operations therefore hand their output straight to ``_from_arrays``
without re-canonicalising — the fact that makes every algorithm round an
end-to-end NumPy pipeline.

The CSR incidence matrix of the hypergraph *is* these arrays (plus a ones
data vector), so "building" the incidence costs O(1) extra allocations —
the old per-round ``np.fromiter`` over edge tuples is gone entirely.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.obs import metrics as obs_metrics

__all__ = ["EdgeStore"]

#: Beyond this edge size the padded lex-sort matrix gets wasteful; fall
#: back to sorting Python tuples (construction-time only, never per round).
_PAD_LIMIT = 64

_EMPTY_EDGE_MSG = "empty edge is not allowed (it would make every set dependent)"


def _row_ids(indptr: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Edge id of every position in ``indices``."""
    return np.repeat(np.arange(sizes.size, dtype=np.intp), sizes)


def _lexsort_rows(
    indptr: np.ndarray,
    indices: np.ndarray,
    changed: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None]:
    """Sort edges lexicographically and merge duplicates.

    Input edges must already be internally sorted and non-empty.  Returns
    ``(indptr, indices, changed_out, present_out)`` where, when *changed*
    is given, *changed_out* ORs the per-edge flags over each duplicate
    group — a dedup collision marks the surviving edge as changed, which
    :func:`repro.hypergraph.ops.normalize_after_trim` relies on — and
    *present_out* flags output edges whose group contains an *unchanged*
    member, i.e. edges whose tuple already existed verbatim in the input
    (what lets callers report an exact edge diff without a full set
    comparison).
    """
    sizes = np.diff(indptr)
    m = sizes.size
    if m <= 1:
        present = None if changed is None else ~changed
        return indptr, indices, changed, present
    dmax = int(sizes.max())
    if dmax > _PAD_LIMIT:
        return _lexsort_rows_fallback(indptr, indices, changed)
    rows = _row_ids(indptr, sizes)
    cols = np.arange(indices.size, dtype=np.intp) - np.repeat(indptr[:-1], sizes)
    M = np.full((m, dmax), -1, dtype=np.intp)
    M[rows, cols] = indices
    order = np.lexsort(M.T[::-1])
    Ms = M[order]
    keep = np.empty(m, dtype=bool)
    keep[0] = True
    keep[1:] = (Ms[1:] != Ms[:-1]).any(axis=1)

    sizes_sorted = sizes[order]
    out_sizes = sizes_sorted[keep]
    out_indptr = np.zeros(out_sizes.size + 1, dtype=np.intp)
    np.cumsum(out_sizes, out=out_indptr[1:])
    starts = indptr[:-1][order][keep]
    within = np.arange(int(out_indptr[-1]), dtype=np.intp) - np.repeat(
        out_indptr[:-1], out_sizes
    )
    out_indices = indices[np.repeat(starts, out_sizes) + within]

    changed_out = None
    present_out = None
    if changed is not None:
        group = np.cumsum(keep) - 1  # output row of each sorted input row
        changed_sorted = changed[order]
        changed_out = np.zeros(out_sizes.size, dtype=bool)
        np.logical_or.at(changed_out, group, changed_sorted)
        present_out = np.zeros(out_sizes.size, dtype=bool)
        np.logical_or.at(present_out, group, ~changed_sorted)
    return out_indptr, out_indices, changed_out, present_out


def _lexsort_rows_fallback(
    indptr: np.ndarray,
    indices: np.ndarray,
    changed: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None]:
    """Tuple-based edge sort for degenerate dimensions (> _PAD_LIMIT)."""
    m = indptr.size - 1
    tuples = [tuple(indices[indptr[i] : indptr[i + 1]].tolist()) for i in range(m)]
    order = sorted(range(m), key=tuples.__getitem__)
    merged: dict[tuple[int, ...], list[bool]] = {}
    for i in order:
        t = tuples[i]
        flag = bool(changed[i]) if changed is not None else False
        entry = merged.get(t)
        if entry is None:
            merged[t] = [flag, not flag]
        else:
            entry[0] = entry[0] or flag
            entry[1] = entry[1] or not flag
    out_sizes = np.fromiter((len(t) for t in merged), dtype=np.intp, count=len(merged))
    out_indptr = np.zeros(out_sizes.size + 1, dtype=np.intp)
    np.cumsum(out_sizes, out=out_indptr[1:])
    out_indices = np.fromiter(
        (v for t in merged for v in t), dtype=np.intp, count=int(out_indptr[-1])
    )
    changed_out = None
    present_out = None
    if changed is not None:
        changed_out = np.fromiter(
            (e[0] for e in merged.values()), dtype=bool, count=len(merged)
        )
        present_out = np.fromiter(
            (e[1] for e in merged.values()), dtype=bool, count=len(merged)
        )
    return out_indptr, out_indices, changed_out, present_out


class EdgeStore:
    """Immutable canonical edge list in CSR form.

    Construct via :meth:`from_iterable` (general input, full
    canonicalisation) or :meth:`from_arrays` (``canonical=True`` trusts the
    caller's proof that the invariant already holds and skips all work).
    """

    __slots__ = ("indptr", "indices", "_sizes")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        self.indptr = indptr
        self.indices = indices
        self._sizes: np.ndarray | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "EdgeStore":
        return cls(np.zeros(1, dtype=np.intp), np.empty(0, dtype=np.intp))

    @classmethod
    def from_iterable(cls, edges: Iterable[Iterable[int]]) -> "EdgeStore":
        """Canonicalise arbitrary edge input (the general construction path)."""
        edge_list = [tuple(e) for e in edges]
        if not edge_list:
            return cls.empty()
        sizes = np.fromiter((len(e) for e in edge_list), dtype=np.intp, count=len(edge_list))
        if (sizes == 0).any():
            raise ValueError(_EMPTY_EDGE_MSG)
        indptr = np.zeros(sizes.size + 1, dtype=np.intp)
        np.cumsum(sizes, out=indptr[1:])
        indices = np.fromiter(
            (int(v) for e in edge_list for v in e), dtype=np.intp, count=int(indptr[-1])
        )
        return cls.from_arrays(indptr, indices, canonical=False)

    @classmethod
    def from_arrays(
        cls, indptr: np.ndarray, indices: np.ndarray, *, canonical: bool
    ) -> "EdgeStore":
        """Build from CSR arrays.

        With ``canonical=True`` the arrays are adopted as-is — the trusted
        fast path for algorithm-produced successors.  With ``canonical=False``
        the full canonicalisation runs: sort + dedup within each edge, then
        lex-sort + dedup the edge list.
        """
        indptr = np.asarray(indptr, dtype=np.intp)
        indices = np.asarray(indices, dtype=np.intp)
        if canonical:
            return cls(indptr, indices)
        obs_metrics.inc("edgestore/canonicalisations")
        sizes = np.diff(indptr)
        if (sizes == 0).any():
            raise ValueError(_EMPTY_EDGE_MSG)
        if sizes.size == 0:
            return cls.empty()
        # Within-edge sort: lexsort with row as the primary key keeps rows
        # grouped (they are already in ascending order) and sorts inside.
        rows = _row_ids(indptr, sizes)
        order = np.lexsort((indices, rows))
        sorted_idx = indices[order]
        dup = np.zeros(indices.size, dtype=bool)
        if indices.size > 1:
            dup[1:] = (rows[1:] == rows[:-1]) & (sorted_idx[1:] == sorted_idx[:-1])
        keep = ~dup
        new_indices = sorted_idx[keep]
        new_sizes = np.bincount(rows[keep], minlength=sizes.size).astype(np.intp)
        new_indptr = np.zeros(new_sizes.size + 1, dtype=np.intp)
        np.cumsum(new_sizes, out=new_indptr[1:])
        out_indptr, out_indices, _, _ = _lexsort_rows(new_indptr, new_indices)
        return cls(out_indptr, out_indices)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return self.indptr.size - 1

    @property
    def total_size(self) -> int:
        return int(self.indptr[-1])

    def sizes(self) -> np.ndarray:
        """Per-edge sizes (computed once and cached; treat as read-only)."""
        if self._sizes is None:
            self._sizes = np.diff(self.indptr)
        return self._sizes

    def edge(self, i: int) -> tuple[int, ...]:
        """Edge *i* as a sorted tuple (error paths and cold queries only)."""
        return tuple(self.indices[self.indptr[i] : self.indptr[i + 1]].tolist())

    def edge_tuples(self) -> tuple[tuple[int, ...], ...]:
        """All edges as sorted tuples — the compatibility view, O(total) Python."""
        if self.num_edges == 0:
            return ()
        parts = np.split(self.indices, self.indptr[1:-1])
        return tuple(tuple(p.tolist()) for p in parts)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self.edge_tuples())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeStore):
            return NotImplemented
        return np.array_equal(self.indptr, other.indptr) and np.array_equal(
            self.indices, other.indices
        )

    def __hash__(self) -> int:
        return hash((self.indptr.tobytes(), self.indices.tobytes()))

    # ------------------------------------------------------------------
    # canonical-preserving transforms (all trusted-output)
    # ------------------------------------------------------------------
    def position_mask(self, edge_mask: np.ndarray) -> np.ndarray:
        """Expand a per-edge boolean mask to a per-position mask."""
        return np.repeat(edge_mask, self.sizes())

    def select(self, edge_mask: np.ndarray) -> "EdgeStore":
        """Keep the masked edges.  A subsequence of a canonical edge list is
        canonical, so the result is trusted."""
        sizes = self.sizes()
        kept_sizes = sizes[edge_mask]
        new_indptr = np.zeros(kept_sizes.size + 1, dtype=np.intp)
        np.cumsum(kept_sizes, out=new_indptr[1:])
        new_indices = self.indices[np.repeat(edge_mask, sizes)]
        return EdgeStore(new_indptr, new_indices)

    def diff(self, other: "EdgeStore") -> tuple[np.ndarray, np.ndarray]:
        """Symmetric difference of two canonical stores, as index arrays.

        Returns ``(removed, added)``: indices of the edges present in *self*
        but not in *other*, and vice versa.  Both stores being duplicate-free,
        one lex-sort of the stacked padded matrices pairs identical rows off
        (every equal-row run has length exactly two: one row per store); the
        unpaired rows are the difference.  This is what lets the incremental
        degree tracker update in O(changed) instead of O(m) per round.
        """
        m1, m2 = self.num_edges, other.num_edges
        if m1 == 0 or m2 == 0:
            return (
                np.arange(m1, dtype=np.intp),
                np.arange(m2, dtype=np.intp),
            )
        s1, s2 = self.sizes(), other.sizes()
        dmax = int(max(s1.max(), s2.max()))
        if dmax > _PAD_LIMIT:
            return self._diff_fallback(other)
        M = np.full((m1 + m2, dmax), -1, dtype=np.intp)
        rows1 = _row_ids(self.indptr, s1)
        cols1 = np.arange(self.indices.size, dtype=np.intp) - np.repeat(
            self.indptr[:-1], s1
        )
        M[rows1, cols1] = self.indices
        rows2 = _row_ids(other.indptr, s2)
        cols2 = np.arange(other.indices.size, dtype=np.intp) - np.repeat(
            other.indptr[:-1], s2
        )
        M[m1 + rows2, cols2] = other.indices
        order = np.lexsort(M.T[::-1])
        Ms = M[order]
        same = (Ms[1:] == Ms[:-1]).all(axis=1)
        matched = np.zeros(m1 + m2, dtype=bool)
        matched[1:] = same
        matched[:-1] |= same
        unmatched = order[~matched]
        removed = np.sort(unmatched[unmatched < m1])
        added = np.sort(unmatched[unmatched >= m1] - m1)
        return removed, added

    def _diff_fallback(self, other: "EdgeStore") -> tuple[np.ndarray, np.ndarray]:
        """Tuple-based diff for degenerate dimensions (> _PAD_LIMIT)."""
        a = set(self.edge_tuples())
        b = set(other.edge_tuples())
        removed = np.asarray(
            [i for i, t in enumerate(self.edge_tuples()) if t not in b], dtype=np.intp
        )
        added = np.asarray(
            [i for i, t in enumerate(other.edge_tuples()) if t not in a], dtype=np.intp
        )
        return removed, added

    def trim(
        self, vertex_mask: np.ndarray
    ) -> tuple["EdgeStore", np.ndarray, bool, np.ndarray, np.ndarray]:
        """Remove the masked vertices from every edge; re-canonicalise.

        Removing vertices keeps each edge internally sorted, so only the
        edge-level lex-sort + dedup re-runs.  Returns
        ``(store, changed_mask, any_change, changed_in, present_mask)``:
        *changed_mask* flags the output edges that shrank or absorbed a
        dedup collision, *changed_in* flags the **input** edges that shrank,
        and *present_mask* flags output edges whose tuple already existed
        verbatim in the input (some dedup-group member was untouched) — the
        two extra masks are what exact cross-round caches (the Δ tracker)
        consume in lieu of a full store diff.

        Raises
        ------
        ValueError
            If an edge would become empty (the removed set contains a full
            edge — a correctness violation upstream).
        """
        obs_metrics.inc("edgestore/trim_calls")
        if self.num_edges == 0:
            z = np.zeros(0, dtype=bool)
            return self, z, False, z, np.ones(0, dtype=bool)
        hit = vertex_mask[self.indices]
        if not hit.any():
            z = np.zeros(self.num_edges, dtype=bool)
            return self, z, False, z, np.ones(self.num_edges, dtype=bool)
        sizes = self.sizes()
        removed_per_edge = np.add.reduceat(hit.astype(np.intp), self.indptr[:-1])
        new_sizes = sizes - removed_per_edge
        if (new_sizes == 0).any():
            bad = int(np.flatnonzero(new_sizes == 0)[0])
            raise ValueError(
                f"edge {self.edge(bad)} became empty: the removed set contains a full edge"
            )
        new_indices = self.indices[~hit]
        new_indptr = np.zeros(new_sizes.size + 1, dtype=np.intp)
        np.cumsum(new_sizes, out=new_indptr[1:])
        changed = removed_per_edge > 0
        obs_metrics.inc("edgestore/edges_trimmed", int(np.count_nonzero(changed)))
        out_indptr, out_indices, changed_out, present_out = _lexsort_rows(
            new_indptr, new_indices, changed
        )
        assert changed_out is not None and present_out is not None
        return EdgeStore(out_indptr, out_indices), changed_out, True, changed, present_out
