"""The canonical hypergraph value type.

Design notes
------------
* **Fixed universe.**  Vertices are integers in ``{0, …, universe-1}``.  The
  universe never changes across algorithm rounds even as vertices are
  removed, so vertex ids in the final independent set always refer to the
  input hypergraph.  The *active* vertex set is an explicit sorted array.
* **Canonical edges.**  Each edge is stored as a sorted tuple of distinct
  ints; the edge list is lexicographically sorted and deduplicated.  Two
  hypergraphs compare equal iff they have the same universe, vertex set and
  edge multiset — which, being canonical, is a cheap tuple comparison.
* **Vectorised hot path.**  The fully-marked-edge test at the heart of the
  Beame–Luby algorithm is a sparse matrix–vector product against the CSR
  incidence matrix (built lazily and cached); per-edge Python loops are kept
  only in reference implementations used for differential testing.
* **Value semantics.**  Instances are immutable; the update operations in
  :mod:`repro.hypergraph.ops` return new instances.  This costs an array
  rebuild per algorithm round — rounds are polylogarithmic, each round is
  Ω(total edge size) anyway — and buys simple, auditable algorithm code.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = ["Hypergraph"]

EdgeLike = Iterable[int]


def _canonical_edges(edges: Iterable[EdgeLike]) -> tuple[tuple[int, ...], ...]:
    """Sort each edge, dedupe vertices within an edge, dedupe + sort edges."""
    seen: set[tuple[int, ...]] = set()
    out: list[tuple[int, ...]] = []
    for e in edges:
        t = tuple(sorted(set(int(v) for v in e)))
        if not t:
            raise ValueError("empty edge is not allowed (it would make every set dependent)")
        if t not in seen:
            seen.add(t)
            out.append(t)
    out.sort()
    return tuple(out)


class Hypergraph:
    """An immutable hypergraph ``H = (V, E)`` over a fixed integer universe.

    Parameters
    ----------
    universe:
        Size of the ground set; vertices are ``0 … universe-1``.
    edges:
        Iterable of vertex iterables.  Edges are canonicalised (sorted,
        deduplicated); an empty edge raises ``ValueError``.
    vertices:
        The active vertex set.  Defaults to the full universe.  Every edge
        must be contained in the active set.

    Examples
    --------
    >>> H = Hypergraph(5, [(0, 1, 2), (2, 3)])
    >>> H.num_vertices, H.num_edges, H.dimension
    (5, 2, 3)
    >>> H.edges
    ((0, 1, 2), (2, 3))
    """

    __slots__ = (
        "_universe",
        "_vertices",
        "_edges",
        "_incidence",
        "_edge_sizes",
        "_vertex_to_edges",
    )

    def __init__(
        self,
        universe: int,
        edges: Iterable[EdgeLike] = (),
        vertices: Sequence[int] | np.ndarray | None = None,
    ):
        if universe < 0:
            raise ValueError(f"universe must be non-negative: {universe}")
        self._universe = int(universe)
        if vertices is None:
            self._vertices = np.arange(universe, dtype=np.intp)
        else:
            v = np.unique(np.asarray(list(vertices) if not isinstance(vertices, np.ndarray) else vertices, dtype=np.intp))
            if v.size and (v[0] < 0 or v[-1] >= universe):
                raise IndexError("vertex outside universe")
            self._vertices = v
        self._edges = _canonical_edges(edges)
        if self._edges:
            vset = set(self._vertices.tolist())
            for e in self._edges:
                for x in e:
                    if x not in vset:
                        raise ValueError(f"edge {e} contains inactive vertex {x}")
        # Lazy caches.
        self._incidence: sp.csr_matrix | None = None
        self._edge_sizes: np.ndarray | None = None
        self._vertex_to_edges: dict[int, list[int]] | None = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def universe(self) -> int:
        """Size of the ground set (stable across algorithm rounds)."""
        return self._universe

    @property
    def vertices(self) -> np.ndarray:
        """Active vertices as a sorted read-only index array."""
        view = self._vertices.view()
        view.flags.writeable = False
        return view

    @property
    def edges(self) -> tuple[tuple[int, ...], ...]:
        """Canonical edge tuple (each edge a sorted tuple of vertex ids)."""
        return self._edges

    @property
    def num_vertices(self) -> int:
        """|V| — the number of *active* vertices."""
        return int(self._vertices.size)

    @property
    def num_edges(self) -> int:
        """|E|."""
        return len(self._edges)

    @property
    def dimension(self) -> int:
        """Maximum edge size (0 for an edgeless hypergraph)."""
        return max((len(e) for e in self._edges), default=0)

    @property
    def min_edge_size(self) -> int:
        """Minimum edge size (0 for an edgeless hypergraph)."""
        return min((len(e) for e in self._edges), default=0)

    @property
    def total_edge_size(self) -> int:
        """Σ_e |e| — the natural input-size measure."""
        return sum(len(e) for e in self._edges)

    def edge_sizes(self) -> np.ndarray:
        """Edge sizes as an int array aligned with :attr:`edges`."""
        if self._edge_sizes is None:
            self._edge_sizes = np.array([len(e) for e in self._edges], dtype=np.intp)
        return self._edge_sizes

    # ------------------------------------------------------------------
    # derived structures (lazily cached)
    # ------------------------------------------------------------------
    def incidence(self) -> sp.csr_matrix:
        """The ``m × universe`` 0/1 incidence matrix in CSR form.

        Row ``i`` is the indicator vector of edge ``i``.  The hot path of
        every marking algorithm is ``incidence() @ marked`` which yields,
        per edge, the number of marked vertices.
        """
        if self._incidence is None:
            m = len(self._edges)
            indptr = np.zeros(m + 1, dtype=np.intp)
            sizes = self.edge_sizes()
            np.cumsum(sizes, out=indptr[1:])
            indices = np.fromiter(
                (v for e in self._edges for v in e),
                dtype=np.intp,
                count=int(indptr[-1]),
            )
            data = np.ones(indices.size, dtype=np.int64)
            self._incidence = sp.csr_matrix(
                (data, indices, indptr), shape=(m, self._universe)
            )
        return self._incidence

    def vertex_to_edges(self) -> dict[int, list[int]]:
        """Map each vertex to the (sorted) list of indices of edges containing it."""
        if self._vertex_to_edges is None:
            adj: dict[int, list[int]] = {}
            for i, e in enumerate(self._edges):
                for v in e:
                    adj.setdefault(v, []).append(i)
            self._vertex_to_edges = adj
        return self._vertex_to_edges

    def degree(self, v: int) -> int:
        """Number of edges containing vertex *v*."""
        return len(self.vertex_to_edges().get(v, ()))

    def max_degree(self) -> int:
        """Maximum vertex degree (0 if edgeless)."""
        adj = self.vertex_to_edges()
        return max((len(es) for es in adj.values()), default=0)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_edge(self, e: EdgeLike) -> bool:
        """Is the canonicalised *e* an edge of H? (binary search)"""
        t = tuple(sorted(set(int(v) for v in e)))
        lo, hi = 0, len(self._edges)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._edges[mid] < t:
                lo = mid + 1
            else:
                hi = mid
        return lo < len(self._edges) and self._edges[lo] == t

    def edges_within(self, member_mask: np.ndarray) -> np.ndarray:
        """Indices of edges fully contained in the vertex set given by *member_mask*.

        *member_mask* is a boolean array over the universe.  Vectorised:
        one sparse matvec.
        """
        if member_mask.shape != (self._universe,):
            raise ValueError("mask must cover the universe")
        if not self._edges:
            return np.empty(0, dtype=np.intp)
        counts = self.incidence() @ member_mask.astype(np.int64)
        return np.flatnonzero(counts == self.edge_sizes())

    def edges_touching(self, member_mask: np.ndarray) -> np.ndarray:
        """Indices of edges with at least one vertex in the masked set."""
        if member_mask.shape != (self._universe,):
            raise ValueError("mask must cover the universe")
        if not self._edges:
            return np.empty(0, dtype=np.intp)
        counts = self.incidence() @ member_mask.astype(np.int64)
        return np.flatnonzero(counts > 0)

    def contains_fully(self, member_mask: np.ndarray) -> bool:
        """Does some edge lie entirely inside the masked vertex set?"""
        return self.edges_within(member_mask).size > 0

    def vertex_mask(self) -> np.ndarray:
        """Boolean mask over the universe marking the active vertices."""
        mask = np.zeros(self._universe, dtype=bool)
        mask[self._vertices] = True
        return mask

    # ------------------------------------------------------------------
    # sub-hypergraphs
    # ------------------------------------------------------------------
    def induced(self, vertex_subset: Iterable[int] | np.ndarray) -> "Hypergraph":
        """The sub-hypergraph induced by *vertex_subset*.

        Vertices are restricted to the subset; the edges kept are exactly
        those **fully contained** in the subset (the paper's
        ``E' = {e ∈ E : e ⊆ V'}`` in SBL line 7).
        """
        idx = np.asarray(
            list(vertex_subset) if not isinstance(vertex_subset, np.ndarray) else vertex_subset,
            dtype=np.intp,
        )
        mask = np.zeros(self._universe, dtype=bool)
        if idx.size:
            mask[idx] = True
        keep = self.edges_within(mask)
        active = np.intersect1d(self._vertices, np.unique(idx), assume_unique=False)
        return Hypergraph(
            self._universe,
            [self._edges[i] for i in keep.tolist()],
            vertices=active,
        )

    def without_vertices(self, vertex_subset: Iterable[int] | np.ndarray) -> "Hypergraph":
        """Drop the given vertices from the active set and drop edges touching them."""
        idx = np.asarray(
            list(vertex_subset) if not isinstance(vertex_subset, np.ndarray) else vertex_subset,
            dtype=np.intp,
        )
        mask = np.zeros(self._universe, dtype=bool)
        if idx.size:
            mask[idx] = True
        touched = set(self.edges_touching(mask).tolist())
        keep_edges = [e for i, e in enumerate(self._edges) if i not in touched]
        remaining = np.setdiff1d(self._vertices, idx, assume_unique=False)
        return Hypergraph(self._universe, keep_edges, vertices=remaining)

    def replace(
        self,
        *,
        edges: Iterable[EdgeLike] | None = None,
        vertices: Sequence[int] | np.ndarray | None = None,
    ) -> "Hypergraph":
        """Functional update returning a new hypergraph over the same universe."""
        return Hypergraph(
            self._universe,
            self._edges if edges is None else edges,
            vertices=self._vertices if vertices is None else vertices,
        )

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return (
            self._universe == other._universe
            and self._vertices.size == other._vertices.size
            and bool((self._vertices == other._vertices).all())
            and self._edges == other._edges
        )

    def __hash__(self) -> int:
        return hash((self._universe, self._vertices.tobytes(), self._edges))

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __repr__(self) -> str:
        return (
            f"Hypergraph(universe={self._universe}, n={self.num_vertices}, "
            f"m={self.num_edges}, dim={self.dimension})"
        )
