"""The canonical hypergraph value type.

Design notes
------------
* **Fixed universe.**  Vertices are integers in ``{0, …, universe-1}``.  The
  universe never changes across algorithm rounds even as vertices are
  removed, so vertex ids in the final independent set always refer to the
  input hypergraph.  The *active* vertex set is an explicit sorted array.
* **CSR-native canonical edges.**  Edges live in an
  :class:`~repro.hypergraph.edgestore.EdgeStore` — a ``(indptr, indices)``
  ragged-array pair holding each edge as a strictly increasing run, the
  edge list lexicographically sorted and deduplicated.  The tuple-of-tuples
  view (:attr:`edges`) is materialised lazily for cold paths and tests; the
  hot paths (algorithm rounds, incidence, validation) never touch it.
* **Trusted construction.**  ``Hypergraph._from_arrays`` adopts
  already-canonical arrays without re-canonicalising or re-validating —
  every algorithm-produced successor hypergraph (masked edge selections,
  trims of canonical stores) qualifies, which removes the per-round
  canonicalisation cost entirely.  Public construction still canonicalises
  and validates.
* **Vectorised hot path.**  The fully-marked-edge test at the heart of the
  Beame–Luby algorithm is a sparse matrix–vector product against the CSR
  incidence matrix, whose index arrays *are* the edge store's arrays
  (building it allocates only the data vector); per-edge Python loops are
  kept only in reference implementations used for differential testing.
* **Value semantics.**  Instances are immutable; the update operations in
  :mod:`repro.hypergraph.ops` return new instances.  This costs an array
  rebuild per algorithm round — rounds are polylogarithmic, each round is
  Ω(total edge size) anyway — and buys simple, auditable algorithm code.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from repro.hypergraph.edgestore import EdgeStore

__all__ = ["Hypergraph"]

EdgeLike = Iterable[int]


class Hypergraph:
    """An immutable hypergraph ``H = (V, E)`` over a fixed integer universe.

    Parameters
    ----------
    universe:
        Size of the ground set; vertices are ``0 … universe-1``.
    edges:
        Iterable of vertex iterables.  Edges are canonicalised (sorted,
        deduplicated); an empty edge raises ``ValueError``.
    vertices:
        The active vertex set.  Defaults to the full universe.  Every edge
        must be contained in the active set.

    Examples
    --------
    >>> H = Hypergraph(5, [(0, 1, 2), (2, 3)])
    >>> H.num_vertices, H.num_edges, H.dimension
    (5, 2, 3)
    >>> H.edges
    ((0, 1, 2), (2, 3))
    """

    __slots__ = (
        "_universe",
        "_vertices",
        "_store",
        "_edges",
        "_incidence",
        "_edge_sizes",
        "_dimension",
        "_vertex_to_edges",
        "_content_hash",
    )

    def __init__(
        self,
        universe: int,
        edges: Iterable[EdgeLike] = (),
        vertices: Sequence[int] | np.ndarray | None = None,
    ):
        if universe < 0:
            raise ValueError(f"universe must be non-negative: {universe}")
        self._universe = int(universe)
        if vertices is None:
            self._vertices = np.arange(universe, dtype=np.intp)
        else:
            v = np.unique(np.asarray(list(vertices) if not isinstance(vertices, np.ndarray) else vertices, dtype=np.intp))
            if v.size and (v[0] < 0 or v[-1] >= universe):
                raise IndexError("vertex outside universe")
            self._vertices = v
        self._store = edges if isinstance(edges, EdgeStore) else EdgeStore.from_iterable(edges)
        self._validate_edges_active()
        self._init_caches()

    def _init_caches(self) -> None:
        self._edges: tuple[tuple[int, ...], ...] | None = None
        self._incidence: sp.csr_matrix | None = None
        self._edge_sizes: np.ndarray | None = None
        self._dimension: int | None = None
        self._vertex_to_edges: dict[int, list[int]] | None = None
        self._content_hash: str | None = None

    def _validate_edges_active(self) -> None:
        """Every edge vertex must be an *active* vertex — one vectorised mask
        check over the flat index array (no per-vertex Python loop)."""
        idx = self._store.indices
        if idx.size == 0:
            return
        active_mask = np.zeros(self._universe + 1, dtype=bool)
        active_mask[self._vertices] = True
        in_range = (idx >= 0) & (idx < self._universe)
        ok = in_range & active_mask[np.where(in_range, idx, self._universe)]
        if ok.all():
            return
        pos = int(np.flatnonzero(~ok)[0])
        j = int(np.searchsorted(self._store.indptr, pos, side="right")) - 1
        raise ValueError(
            f"edge {self._store.edge(j)} contains inactive vertex {int(idx[pos])}"
        )

    @classmethod
    def _from_arrays(
        cls, universe: int, store: EdgeStore, vertices: np.ndarray
    ) -> "Hypergraph":
        """Trusted-construction fast path.

        Adopts *store* (which must already satisfy the canonical invariant)
        and *vertices* (sorted, unique, in range, containing every edge
        vertex) without canonicalisation or validation.  Callers are the
        algorithm kernels whose outputs provably preserve those invariants
        — masked selections and trims of an already-canonical hypergraph.
        """
        obj = object.__new__(cls)
        obj._universe = int(universe)
        obj._vertices = vertices
        obj._store = store
        obj._init_caches()
        return obj

    # ------------------------------------------------------------------
    # array round-trip (the wire/shared-memory representation)
    # ------------------------------------------------------------------
    def to_arrays(self) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
        """Decompose into ``(universe, vertices, indptr, indices)``.

        The three arrays are the instance's own buffers exposed read-only
        (zero-copy); together with the universe they determine the
        hypergraph exactly and satisfy the canonical invariant, so
        :meth:`from_arrays` reconstructs an equal instance without
        re-canonicalising.  This is the transfer format the parallel
        executor serialises into shared memory.
        """

        def _ro(a: np.ndarray) -> np.ndarray:
            view = a.view()
            view.flags.writeable = False
            return view

        return (
            self._universe,
            _ro(self._vertices),
            _ro(self._store.indptr),
            _ro(self._store.indices),
        )

    @classmethod
    def from_arrays(
        cls,
        universe: int,
        vertices: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        canonical: bool = True,
    ) -> "Hypergraph":
        """Rebuild from :meth:`to_arrays` output.

        With ``canonical=True`` (the round-trip case) the arrays are
        adopted as-is — no copy, no validation — so workers attaching to a
        shared-memory buffer pay only the view construction.  Pass
        ``canonical=False`` for arrays of unknown provenance; the full
        canonicalisation and active-vertex validation then runs.
        """
        store = EdgeStore.from_arrays(indptr, indices, canonical=canonical)
        if canonical:
            return cls._from_arrays(int(universe), store, np.asarray(vertices, dtype=np.intp))
        return cls(int(universe), store, vertices=vertices)

    def content_hash(self) -> str:
        """SHA-256 over the canonical arrays (hex digest, cached).

        Two hypergraphs are equal iff their hashes agree (the arrays are
        canonical, so the representation is unique).  The parallel
        executor keys its worker-side instance cache on this.
        """
        if self._content_hash is None:
            import hashlib

            h = hashlib.sha256()
            h.update(
                np.asarray(
                    [self._universe, self._vertices.size, self._store.num_edges],
                    dtype=np.int64,
                ).tobytes()
            )
            h.update(np.ascontiguousarray(self._vertices).tobytes())
            h.update(np.ascontiguousarray(self._store.indptr).tobytes())
            h.update(np.ascontiguousarray(self._store.indices).tobytes())
            self._content_hash = h.hexdigest()
        return self._content_hash

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def universe(self) -> int:
        """Size of the ground set (stable across algorithm rounds)."""
        return self._universe

    @property
    def vertices(self) -> np.ndarray:
        """Active vertices as a sorted read-only index array."""
        view = self._vertices.view()
        view.flags.writeable = False
        return view

    @property
    def store(self) -> EdgeStore:
        """The CSR edge store (canonical ``(indptr, indices)`` arrays)."""
        return self._store

    @property
    def edges(self) -> tuple[tuple[int, ...], ...]:
        """Canonical edge tuple (each edge a sorted tuple of vertex ids).

        Materialised lazily from the edge store; hot paths use the arrays.
        """
        if self._edges is None:
            self._edges = self._store.edge_tuples()
        return self._edges

    @property
    def num_vertices(self) -> int:
        """|V| — the number of *active* vertices."""
        return int(self._vertices.size)

    @property
    def num_edges(self) -> int:
        """|E|."""
        return self._store.num_edges

    @property
    def dimension(self) -> int:
        """Maximum edge size (0 for an edgeless hypergraph)."""
        if self._dimension is None:
            sizes = self.edge_sizes()
            self._dimension = int(sizes.max()) if sizes.size else 0
        return self._dimension

    @property
    def min_edge_size(self) -> int:
        """Minimum edge size (0 for an edgeless hypergraph)."""
        sizes = self.edge_sizes()
        return int(sizes.min()) if sizes.size else 0

    @property
    def total_edge_size(self) -> int:
        """Σ_e |e| — the natural input-size measure."""
        return self._store.total_size

    def edge_sizes(self) -> np.ndarray:
        """Edge sizes as an int array aligned with :attr:`edges`."""
        if self._edge_sizes is None:
            self._edge_sizes = self._store.sizes()
        return self._edge_sizes

    # ------------------------------------------------------------------
    # derived structures (lazily cached)
    # ------------------------------------------------------------------
    def incidence(self) -> sp.csr_matrix:
        """The ``m × universe`` 0/1 incidence matrix in CSR form.

        Row ``i`` is the indicator vector of edge ``i``.  The hot path of
        every marking algorithm is ``incidence() @ marked`` which yields,
        per edge, the number of marked vertices.  The index arrays are the
        edge store's own — only the data vector is allocated.
        """
        if self._incidence is None:
            data = np.ones(self._store.indices.size, dtype=np.int64)
            self._incidence = sp.csr_matrix(
                (data, self._store.indices, self._store.indptr),
                shape=(self._store.num_edges, self._universe),
            )
        return self._incidence

    def vertex_to_edges(self) -> dict[int, list[int]]:
        """Map each vertex to the (sorted) list of indices of edges containing it."""
        if self._vertex_to_edges is None:
            adj: dict[int, list[int]] = {}
            for i, e in enumerate(self.edges):
                for v in e:
                    adj.setdefault(v, []).append(i)
            self._vertex_to_edges = adj
        return self._vertex_to_edges

    def degree(self, v: int) -> int:
        """Number of edges containing vertex *v*."""
        return int(np.count_nonzero(self._store.indices == v))

    def degrees(self) -> np.ndarray:
        """Vertex degrees over the whole universe (one bincount)."""
        return np.bincount(self._store.indices, minlength=self._universe)

    def max_degree(self) -> int:
        """Maximum vertex degree (0 if edgeless)."""
        if self._store.indices.size == 0:
            return 0
        return int(self.degrees().max())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_edge(self, e: EdgeLike) -> bool:
        """Is the canonicalised *e* an edge of H? (binary search)"""
        t = tuple(sorted(set(int(v) for v in e)))
        edges = self.edges
        lo, hi = 0, len(edges)
        while lo < hi:
            mid = (lo + hi) // 2
            if edges[mid] < t:
                lo = mid + 1
            else:
                hi = mid
        return lo < len(edges) and edges[lo] == t

    def edges_within(self, member_mask: np.ndarray) -> np.ndarray:
        """Indices of edges fully contained in the vertex set given by *member_mask*.

        *member_mask* is a boolean array over the universe.  Vectorised:
        one sparse matvec.
        """
        if member_mask.shape != (self._universe,):
            raise ValueError("mask must cover the universe")
        if self.num_edges == 0:
            return np.empty(0, dtype=np.intp)
        counts = self.incidence() @ member_mask.astype(np.int64)
        return np.flatnonzero(counts == self.edge_sizes())

    def edges_touching(self, member_mask: np.ndarray) -> np.ndarray:
        """Indices of edges with at least one vertex in the masked set."""
        if member_mask.shape != (self._universe,):
            raise ValueError("mask must cover the universe")
        if self.num_edges == 0:
            return np.empty(0, dtype=np.intp)
        counts = self.incidence() @ member_mask.astype(np.int64)
        return np.flatnonzero(counts > 0)

    def contains_fully(self, member_mask: np.ndarray) -> bool:
        """Does some edge lie entirely inside the masked vertex set?"""
        return self.edges_within(member_mask).size > 0

    def vertex_mask(self) -> np.ndarray:
        """Boolean mask over the universe marking the active vertices."""
        mask = np.zeros(self._universe, dtype=bool)
        mask[self._vertices] = True
        return mask

    # ------------------------------------------------------------------
    # sub-hypergraphs
    # ------------------------------------------------------------------
    def _subset_mask(self, vertex_subset: Iterable[int] | np.ndarray) -> np.ndarray:
        idx = np.asarray(
            list(vertex_subset) if not isinstance(vertex_subset, np.ndarray) else vertex_subset,
            dtype=np.intp,
        )
        mask = np.zeros(self._universe, dtype=bool)
        if idx.size:
            if int(idx.min()) < 0 or int(idx.max()) >= self._universe:
                raise IndexError("vertex outside universe")
            mask[idx] = True
        return mask

    def induced(self, vertex_subset: Iterable[int] | np.ndarray) -> "Hypergraph":
        """The sub-hypergraph induced by *vertex_subset*.

        Vertices are restricted to the subset; the edges kept are exactly
        those **fully contained** in the subset (the paper's
        ``E' = {e ∈ E : e ⊆ V'}`` in SBL line 7).  A masked selection of a
        canonical store stays canonical, so the result uses the trusted
        fast path.
        """
        mask = self._subset_mask(vertex_subset)
        active = self._vertices[mask[self._vertices]]
        if self.num_edges == 0:
            return Hypergraph._from_arrays(self._universe, self._store, active)
        counts = self.incidence() @ mask.astype(np.int64)
        keep = counts == self.edge_sizes()
        return Hypergraph._from_arrays(self._universe, self._store.select(keep), active)

    def without_vertices(self, vertex_subset: Iterable[int] | np.ndarray) -> "Hypergraph":
        """Drop the given vertices from the active set and drop edges touching them."""
        mask = self._subset_mask(vertex_subset)
        remaining = self._vertices[~mask[self._vertices]]
        if self.num_edges == 0:
            return Hypergraph._from_arrays(self._universe, self._store, remaining)
        counts = self.incidence() @ mask.astype(np.int64)
        keep = counts == 0
        return Hypergraph._from_arrays(
            self._universe, self._store.select(keep), remaining
        )

    def replace(
        self,
        *,
        edges: Iterable[EdgeLike] | None = None,
        vertices: Sequence[int] | np.ndarray | None = None,
    ) -> "Hypergraph":
        """Functional update returning a new hypergraph over the same universe."""
        return Hypergraph(
            self._universe,
            self._store if edges is None else edges,
            vertices=self._vertices if vertices is None else vertices,
        )

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return (
            self._universe == other._universe
            and self._vertices.size == other._vertices.size
            and bool((self._vertices == other._vertices).all())
            and self._store == other._store
        )

    def __hash__(self) -> int:
        return hash((self._universe, self._vertices.tobytes(), self._store))

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self.edges)

    def __len__(self) -> int:
        return self.num_edges

    def __repr__(self) -> str:
        return (
            f"Hypergraph(universe={self._universe}, n={self.num_vertices}, "
            f"m={self.num_edges}, dim={self.dimension})"
        )
