"""Interoperability with NetworkX.

Hypergraphs have two standard graph encodings, both supported here:

* **Bipartite incidence graph** — one node per vertex, one per edge,
  adjacency = membership.  Lossless; the canonical interchange format.
* **2-section (clique expansion)** — vertices only, with a graph edge
  between any two co-members of some hyperedge.  Lossy (it forgets which
  cliques were hyperedges) but useful for visualisation and for comparing
  against graph algorithms; note an MIS of the 2-section is a *strong*
  independent set of the hypergraph (no two chosen vertices share any
  edge), generally much smaller than a hypergraph MIS.

Plain graphs (2-uniform hypergraphs) round-trip exactly through
:func:`graph_to_hypergraph` / :func:`hypergraph_to_graph`.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "to_bipartite",
    "from_bipartite",
    "two_section",
    "graph_to_hypergraph",
    "hypergraph_to_graph",
]

#: Node attribute marking the bipartite side (0 = vertex, 1 = hyperedge).
BIPARTITE_KEY = "bipartite"


def to_bipartite(H: Hypergraph) -> nx.Graph:
    """Encode as the bipartite incidence graph.

    Vertex nodes are the plain ints; edge nodes are ``("e", i)`` tuples
    (index into the canonical edge order).  Node attributes carry the
    bipartite side; the graph's ``universe`` attribute preserves the
    ground-set size so the encoding is lossless.
    """
    G = nx.Graph(universe=H.universe)
    for v in H.vertices.tolist():
        G.add_node(int(v), **{BIPARTITE_KEY: 0})
    for i, e in enumerate(H.edges):
        enode = ("e", i)
        G.add_node(enode, **{BIPARTITE_KEY: 1})
        for v in e:
            G.add_edge(int(v), enode)
    return G


def from_bipartite(G: nx.Graph) -> Hypergraph:
    """Decode a graph produced by :func:`to_bipartite`."""
    try:
        universe = int(G.graph["universe"])
    except KeyError:
        raise ValueError("graph lacks the 'universe' attribute") from None
    vertices = []
    edges = []
    for node, data in G.nodes(data=True):
        side = data.get(BIPARTITE_KEY)
        if side == 0:
            vertices.append(int(node))
        elif side == 1:
            members = tuple(sorted(int(u) for u in G.neighbors(node)))
            if members:
                edges.append(members)
        else:
            raise ValueError(f"node {node!r} lacks the bipartite attribute")
    return Hypergraph(universe, edges, vertices=vertices)


def two_section(H: Hypergraph) -> nx.Graph:
    """The 2-section (clique expansion) on the active vertices."""
    G = nx.Graph()
    G.add_nodes_from(int(v) for v in H.vertices.tolist())
    for e in H.edges:
        for i, u in enumerate(e):
            for v in e[i + 1 :]:
                G.add_edge(int(u), int(v))
    return G


def graph_to_hypergraph(G: nx.Graph) -> Hypergraph:
    """A NetworkX graph as a 2-uniform hypergraph.

    Nodes must be (relabelable to) integers; non-integer nodes are mapped
    by sorted order and the mapping is stored nowhere — pass integer-
    labelled graphs when ids matter.
    """
    nodes: list[Hashable] = sorted(G.nodes())
    if all(isinstance(x, int) for x in nodes):
        universe = max(nodes, default=-1) + 1
        relabel = {x: x for x in nodes}
    else:
        universe = len(nodes)
        relabel = {x: i for i, x in enumerate(nodes)}
    edges = [
        tuple(sorted((relabel[u], relabel[v])))
        for u, v in G.edges()
        if relabel[u] != relabel[v]
    ]
    return Hypergraph(universe, edges, vertices=sorted(relabel.values()))


def hypergraph_to_graph(H: Hypergraph) -> nx.Graph:
    """A 2-uniform hypergraph as a NetworkX graph (raises otherwise)."""
    if any(len(e) != 2 for e in H.edges):
        raise ValueError("hypergraph is not 2-uniform")
    G = nx.Graph()
    G.add_nodes_from(int(v) for v in H.vertices.tolist())
    G.add_edges_from((int(e[0]), int(e[1])) for e in H.edges)
    return G
