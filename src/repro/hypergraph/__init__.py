"""Hypergraph substrate.

The algorithms in :mod:`repro.core` operate on a finite hypergraph
``H = (V, E)`` with ``V ⊆ {0, …, universe-1}`` and each edge ``e ⊆ V``.
This package provides:

* :mod:`repro.hypergraph.hypergraph` — the canonical
  :class:`~repro.hypergraph.hypergraph.Hypergraph` value type (sorted-tuple
  edges + lazily built CSR incidence matrix for vectorised marking).
* :mod:`repro.hypergraph.ops` — the update operations the algorithms need
  (trimming colored vertices out of edges, discarding covered edges,
  removing superset/singleton edges, …); all return new hypergraphs.
* :mod:`repro.hypergraph.degrees` — the degree structures of Kelsen's
  analysis: ``N_j(x, H)``, normalised degrees ``d_j(x, H)``, the maxima
  ``Δ_i(H)`` and ``Δ(H)``, and the potentials ``v_i(H)`` / thresholds
  ``T_j``.
* :mod:`repro.hypergraph.validate` — independence / maximality checkers and
  rich violation reports.
* :mod:`repro.hypergraph.hio` — plain-text and JSON (de)serialisation.
"""

from repro.hypergraph.components import (
    component_labels,
    connected_components,
    num_components,
)
from repro.hypergraph.degrees import (
    Delta,
    Delta_i,
    degree_profile,
    kelsen_potentials,
    neighborhood_count,
    normalized_degree,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.ops import (
    normalize,
    remove_edges_touching,
    remove_singleton_edges,
    remove_superset_edges,
    trim_vertices,
)
from repro.hypergraph.transversal import (
    complement,
    is_minimal_transversal,
    is_transversal,
    minimal_transversal,
)
from repro.hypergraph.updates import (
    UpdateResult,
    apply_updates,
    chain_hash,
    feed_tracker,
)
from repro.hypergraph.validate import (
    IndependenceViolation,
    MaximalityViolation,
    check_mis,
    is_independent,
    is_maximal_independent,
)

__all__ = [
    "Hypergraph",
    "component_labels",
    "connected_components",
    "num_components",
    "is_transversal",
    "is_minimal_transversal",
    "minimal_transversal",
    "complement",
    "normalize",
    "remove_edges_touching",
    "remove_singleton_edges",
    "remove_superset_edges",
    "trim_vertices",
    "UpdateResult",
    "apply_updates",
    "chain_hash",
    "feed_tracker",
    "neighborhood_count",
    "normalized_degree",
    "Delta_i",
    "Delta",
    "degree_profile",
    "kelsen_potentials",
    "is_independent",
    "is_maximal_independent",
    "check_mis",
    "IndependenceViolation",
    "MaximalityViolation",
]
