"""Connected components of a hypergraph.

Two vertices are connected when some chain of edges links them.  MIS
decomposes over components: the union of per-component MISs is an MIS of
the whole hypergraph, and on a PRAM the components run side by side, so
the depth is the *maximum* (not the sum) over components.
:func:`repro.core.decompose.solve_by_components` exploits exactly that.

Implementation: union–find with path halving over the edge lists —
O(Σ|e| · α(n)).
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["component_labels", "connected_components", "num_components"]


def component_labels(H: Hypergraph) -> np.ndarray:
    """Label each *active* vertex with a component id (0-based, dense).

    Returns an array over the universe; inactive vertices get ``-1``.
    Isolated active vertices form singleton components.
    """
    parent = np.arange(H.universe, dtype=np.intp)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = int(parent[x])
        return x

    for e in H.edges:
        r = find(e[0])
        for v in e[1:]:
            rv = find(v)
            if rv != r:
                parent[rv] = r

    labels = np.full(H.universe, -1, dtype=np.intp)
    next_id = 0
    roots: dict[int, int] = {}
    for v in H.vertices.tolist():
        r = find(v)
        if r not in roots:
            roots[r] = next_id
            next_id += 1
        labels[v] = roots[r]
    return labels


def connected_components(H: Hypergraph) -> list[Hypergraph]:
    """Split into component sub-hypergraphs (all over the same universe).

    Every edge lies entirely inside one component by construction, so each
    part carries its full constraint set.
    """
    labels = component_labels(H)
    count = int(labels.max()) + 1 if H.num_vertices else 0
    vert_groups: list[list[int]] = [[] for _ in range(count)]
    for v in H.vertices.tolist():
        vert_groups[labels[v]].append(v)
    edge_groups: list[list[tuple[int, ...]]] = [[] for _ in range(count)]
    for e in H.edges:
        edge_groups[labels[e[0]]].append(e)
    return [
        Hypergraph(H.universe, edge_groups[i], vertices=vert_groups[i])
        for i in range(count)
    ]


def num_components(H: Hypergraph) -> int:
    """Number of connected components among the active vertices."""
    labels = component_labels(H)
    return int(labels.max()) + 1 if H.num_vertices else 0
