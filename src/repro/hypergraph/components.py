"""Connected components of a hypergraph.

Two vertices are connected when some chain of edges links them.  MIS
decomposes over components: the union of per-component MISs is an MIS of
the whole hypergraph, and on a PRAM the components run side by side, so
the depth is the *maximum* (not the sum) over components.
:func:`repro.core.decompose.solve_by_components` exploits exactly that.

Implementation: one ``scipy.sparse.csgraph.connected_components`` call on
the bipartite vertex–edge graph (a node per universe slot plus a node per
edge, linked by incidence) — O(Σ|e|) in compiled code instead of the old
Python union–find.  Labels keep the historical order: dense 0-based ids
assigned by first occurrence over the ascending active vertices.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["component_labels", "connected_components", "num_components"]


def component_labels(H: Hypergraph) -> np.ndarray:
    """Label each *active* vertex with a component id (0-based, dense).

    Returns an array over the universe; inactive vertices get ``-1``.
    Isolated active vertices form singleton components.
    """
    labels = np.full(H.universe, -1, dtype=np.intp)
    verts = H.vertices
    if verts.size == 0:
        return labels
    if H.num_edges:
        store = H.store
        m = store.num_edges
        n_nodes = H.universe + m
        rows = store.indices
        cols = H.universe + np.repeat(np.arange(m, dtype=np.intp), store.sizes())
        graph = sp.coo_matrix(
            (np.ones(rows.size, dtype=np.int8), (rows, cols)),
            shape=(n_nodes, n_nodes),
        )
        _, raw_all = csgraph.connected_components(graph, directed=False)
        raw = raw_all[verts]
    else:
        raw = np.arange(verts.size, dtype=np.intp)
    # Dense remap by first occurrence over the (ascending) active vertices —
    # the id order the union–find implementation produced.
    uniq, first_idx, inv = np.unique(raw, return_index=True, return_inverse=True)
    remap = np.empty(uniq.size, dtype=np.intp)
    remap[np.argsort(first_idx, kind="stable")] = np.arange(uniq.size, dtype=np.intp)
    labels[verts] = remap[inv]
    return labels


def connected_components(H: Hypergraph) -> list[Hypergraph]:
    """Split into component sub-hypergraphs (all over the same universe).

    Every edge lies entirely inside one component by construction, so each
    part carries its full constraint set.  Each part's edges are a masked
    selection of the canonical store (trusted construction — no
    re-canonicalisation).
    """
    labels = component_labels(H)
    count = int(labels.max()) + 1 if H.num_vertices else 0
    if count == 0:
        return []
    store = H.store
    edge_label = (
        labels[store.indices[store.indptr[:-1]]]
        if store.num_edges
        else np.empty(0, dtype=np.intp)
    )
    verts = H.vertices
    vert_label = labels[verts]
    return [
        Hypergraph._from_arrays(
            H.universe, store.select(edge_label == i), verts[vert_label == i]
        )
        for i in range(count)
    ]


def num_components(H: Hypergraph) -> int:
    """Number of connected components among the active vertices."""
    labels = component_labels(H)
    return int(labels.max()) + 1 if H.num_vertices else 0
