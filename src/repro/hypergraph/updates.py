"""Incremental edge updates — the reusable batch-update API.

This module turns the diff machinery that already powers the algorithm
rounds (:meth:`EdgeStore.diff`, :meth:`EdgeStore.trim` reporting, the
:class:`~repro.hypergraph.degrees.DeltaTracker`) into a front-door API for
*streamed* hypergraphs: :func:`apply_updates` applies a batch of edge
arrivals/departures and returns the successor hypergraph together with an
**exact structural diff** (indices of the edges that actually changed, not
the request as submitted — duplicate adds and add/remove cancellations net
out) and a **content-hash chain** so every streamed state stays
cache-addressable and the update history is audit-checkable.

Semantics
---------
* Removals apply first, then additions.  A batch that removes and re-adds
  the same edge therefore leaves it present — and the *exact* diff reports
  it as unchanged.
* Adding an edge activates its vertices; removing an edge never
  deactivates anything (the universe and active set only grow, which keeps
  vertex ids stable across the stream — the same fixed-universe discipline
  the one-shot algorithms rely on).
* ``strict=True`` (default) raises on removing an edge that is not
  present; ``strict=False`` counts and ignores such removals
  (``updates/ignored_removals``), which is what adversarial churn streams
  want.

The diff is exact by construction.  On shapes whose edges pack into one
64-bit key per edge (``dimension · log2(universe) ≲ 62`` — every
practical streamed instance) the whole batch runs **sort-free**: the old
store is already lex-sorted, so packed keys are ascending, removals
resolve by binary search, additions splice in with one ``np.insert``,
and the structural diff falls out of the bookkeeping — O(Σ|e|) with no
O(m log m) re-sort anywhere.  Degenerate shapes fall back to the general
path (one canonical-store ``old.diff(new)`` comparison, a padded
lex-sort); both paths are differentially tested against each other.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.hypergraph.degrees import DeltaTracker
from repro.hypergraph.edgestore import EdgeStore
from repro.hypergraph.hypergraph import EdgeLike, Hypergraph
from repro.obs import metrics as obs_metrics

__all__ = ["UpdateResult", "apply_updates", "chain_hash", "feed_tracker"]


def chain_hash(parent_chain: str, state_hash: str) -> str:
    """Advance the stream's hash chain by one state.

    ``chain_0 = H_0.content_hash()`` and
    ``chain_{t+1} = sha256(chain_t ‖ H_{t+1}.content_hash())`` — two streams
    agree on a chain value iff they agree on the entire state history, while
    each state stays individually addressable by its own content hash.
    """
    h = hashlib.sha256()
    h.update(parent_chain.encode("ascii"))
    h.update(state_hash.encode("ascii"))
    return h.hexdigest()


#: Packed keys must fit an int64 with headroom for the sentinel offset.
_KEY_BITS = 62


def _packed_keys(store: EdgeStore, base: int, width: int) -> np.ndarray:
    """One int64 key per edge, ascending iff the store is lex-sorted.

    Each edge is padded to *width* positions with 0 and written as a
    base-*base* number with digits ``vertex + 2`` — padding compares
    below every vertex, so key order reproduces Python-tuple order
    (a prefix sorts before its extensions), exactly like the sentinel
    matrix in :meth:`EdgeStore.diff`.
    """
    m = store.num_edges
    if m == 0:
        return np.empty(0, dtype=np.int64)
    sizes = store.sizes()
    rows = np.repeat(np.arange(m, dtype=np.intp), sizes)
    cols = np.arange(store.indices.size, dtype=np.intp) - np.repeat(
        store.indptr[:-1], sizes
    )
    M = np.zeros((m, width), dtype=np.int64)
    M[rows, cols] = store.indices.astype(np.int64) + 2
    keys = M[:, 0].copy()
    for c in range(1, width):
        keys *= base
        keys += M[:, c]
    return keys


def _fast_apply(
    old: EdgeStore, rem: EdgeStore, add: EdgeStore, universe: int
) -> tuple[EdgeStore, np.ndarray, np.ndarray, np.ndarray] | None:
    """Sort-free batch application via packed edge keys.

    Returns ``(new_store, removed, added, missing)`` — the successor
    store, the exact diff (cancellation already applied), and the indices
    of requested removals absent from *old* — or ``None`` when the shape
    cannot pack into 62 bits and the caller must take the lex-sort path.
    """
    width = 1
    for store in (old, rem, add):
        if store.num_edges:
            width = max(width, int(store.sizes().max()))
    base = universe + 3
    if width * math.log2(base) > _KEY_BITS:
        return None
    keys_old = _packed_keys(old, base, width)

    if rem.num_edges:
        keys_rem = _packed_keys(rem, base, width)
        pos = np.searchsorted(keys_old, keys_rem)
        if keys_old.size:
            found = (pos < keys_old.size) & (
                keys_old[np.minimum(pos, keys_old.size - 1)] == keys_rem
            )
        else:
            found = np.zeros(keys_rem.size, dtype=bool)
        removed_all = pos[found].astype(np.intp)
        missing = np.flatnonzero(~found)
    else:
        removed_all = np.empty(0, dtype=np.intp)
        missing = np.empty(0, dtype=np.intp)

    keep = np.ones(old.num_edges, dtype=bool)
    keep[removed_all] = False
    mid = old.select(keep) if removed_all.size else old
    keys_mid = keys_old[keep] if removed_all.size else keys_old

    if add.num_edges:
        keys_add = _packed_keys(add, base, width)
        pos2 = np.searchsorted(keys_mid, keys_add)
        if keys_mid.size:
            exists = (pos2 < keys_mid.size) & (
                keys_mid[np.minimum(pos2, keys_mid.size - 1)] == keys_add
            )
        else:
            exists = np.zeros(keys_add.size, dtype=bool)
        fresh_mask = ~exists
        fresh = add.select(fresh_mask)
        keys_fresh = keys_add[fresh_mask]
        ins = pos2[fresh_mask].astype(np.intp)
        if fresh.num_edges:
            fresh_sizes = fresh.sizes()
            new_sizes = np.insert(mid.sizes(), ins, fresh_sizes)
            new_indices = np.insert(
                mid.indices, np.repeat(mid.indptr[ins], fresh_sizes), fresh.indices
            )
            new_indptr = np.zeros(new_sizes.size + 1, dtype=np.intp)
            np.cumsum(new_sizes, out=new_indptr[1:])
            new_store = EdgeStore.from_arrays(new_indptr, new_indices, canonical=True)
            added_idx = ins + np.arange(fresh.num_edges, dtype=np.intp)
        else:
            new_store = mid
            added_idx = np.empty(0, dtype=np.intp)
    else:
        keys_fresh = np.empty(0, dtype=np.int64)
        new_store = mid
        added_idx = np.empty(0, dtype=np.intp)

    removed = removed_all
    added = added_idx
    if removed.size and added.size:
        # A removed-then-re-added edge is unchanged: cancel it out of both
        # sides so the reported diff is the true symmetric difference.
        cancel_rem = np.isin(keys_old[removed], keys_fresh)
        cancel_add = np.isin(keys_fresh, keys_old[removed])
        removed = removed[~cancel_rem]
        added = added[~cancel_add]
    return new_store, removed, added, missing


def _edge_ids_vertices(store: EdgeStore, edge_ids: np.ndarray) -> np.ndarray:
    """Sorted unique vertices of the given edges of *store*."""
    if edge_ids.size == 0:
        return np.empty(0, dtype=np.intp)
    mask = np.zeros(store.num_edges, dtype=bool)
    mask[edge_ids] = True
    return np.unique(store.indices[store.position_mask(mask)])


def _edge_ids_tuples(store: EdgeStore, edge_ids: np.ndarray) -> tuple[tuple[int, ...], ...]:
    return tuple(store.edge(int(i)) for i in edge_ids)


@dataclass(frozen=True)
class UpdateResult:
    """Successor state plus the exact structural diff of one update batch.

    ``removed`` indexes into the *pre*-update edge store, ``added`` into the
    *post*-update store; both describe what actually changed after
    cancellation (a removed-then-re-added edge appears in neither).
    ``dirty_vertices`` is the union of the changed edges' vertices — the
    seed set for repair localization.
    """

    hypergraph: Hypergraph
    removed: np.ndarray = field(compare=False)
    added: np.ndarray = field(compare=False)
    dirty_vertices: np.ndarray = field(compare=False)
    ignored_removals: int
    parent_hash: str
    parent_chain: str
    chain: str

    @property
    def content_hash(self) -> str:
        """Content hash of the successor state (the cache key)."""
        return self.hypergraph.content_hash()

    @property
    def num_changed(self) -> int:
        """Number of edges that actually changed (after cancellation)."""
        return int(self.removed.size + self.added.size)

    @property
    def is_noop(self) -> bool:
        return self.num_changed == 0

    def delta_fraction(self) -> float:
        """Changed edges as a fraction of ``|E_old ∪ E_new|`` (0 for no-ops)."""
        union = self.hypergraph.num_edges + int(self.removed.size)
        return self.num_changed / union if union else 0.0


def apply_updates(
    H: Hypergraph,
    add_edges: Iterable[EdgeLike] = (),
    remove_edges: Iterable[EdgeLike] = (),
    *,
    parent_chain: str | None = None,
    strict: bool = True,
) -> UpdateResult:
    """Apply one batch of edge removals then additions to *H*.

    Parameters
    ----------
    add_edges, remove_edges:
        Iterables of vertex iterables; canonicalised on entry (sorted,
        deduplicated), so request order and within-edge vertex order never
        matter.  Removals are matched against *H* by canonical edge tuple.
    parent_chain:
        The stream's chain value for *H* (defaults to ``H.content_hash()``
        — i.e. *H* is treated as the genesis state).
    strict:
        Raise ``ValueError`` on removing an absent edge (default), or
        count-and-ignore it when ``False``.

    Returns an :class:`UpdateResult`; see the module docstring for the
    exact-diff and activation semantics.
    """
    old_store = H.store
    universe = H.universe

    rem_store = EdgeStore.from_iterable(remove_edges)
    add_store = EdgeStore.from_iterable(add_edges)
    if add_store.indices.size and (
        int(add_store.indices.min()) < 0 or int(add_store.indices.max()) >= universe
    ):
        raise IndexError("added edge contains a vertex outside the universe")

    fast = _fast_apply(old_store, rem_store, add_store, universe)
    if fast is not None:
        new_store, removed, added, missing = fast
    else:
        # General path: full lex-sort canonicalisation + one store diff.
        if rem_store.num_edges:
            surviving, missing = old_store.diff(rem_store)
            keep = np.zeros(old_store.num_edges, dtype=bool)
            keep[surviving] = True
            mid_store = old_store.select(keep)
        else:
            mid_store = old_store
            missing = np.empty(0, dtype=np.intp)
        if add_store.num_edges:
            merged_indptr = np.concatenate(
                [mid_store.indptr, mid_store.indptr[-1] + add_store.indptr[1:]]
            )
            merged_indices = np.concatenate([mid_store.indices, add_store.indices])
            new_store = EdgeStore.from_arrays(
                merged_indptr, merged_indices, canonical=False
            )
        else:
            new_store = mid_store
        removed, added = old_store.diff(new_store)

    ignored = 0
    if missing.size:
        if strict:
            raise ValueError(
                f"cannot remove absent edge {rem_store.edge(int(missing[0]))} "
                f"({missing.size} missing in total; pass strict=False to ignore)"
            )
        ignored = int(missing.size)
        obs_metrics.inc("updates/ignored_removals", ignored)

    new_vertices = np.asarray(H.vertices)
    if add_store.num_edges:
        # Activate only the genuinely new vertices — an O(batch) insert
        # into the sorted active array, not an O(n) set union.
        active = H.vertex_mask()
        novel = np.unique(add_store.indices[~active[add_store.indices]])
        if novel.size:
            new_vertices = np.insert(
                new_vertices, np.searchsorted(new_vertices, novel), novel
            )
    new_H = Hypergraph._from_arrays(universe, new_store, new_vertices)

    dirty = np.union1d(
        _edge_ids_vertices(old_store, removed), _edge_ids_vertices(new_store, added)
    )

    parent_hash = H.content_hash()
    chain_parent = parent_hash if parent_chain is None else parent_chain
    chain = chain_hash(chain_parent, new_H.content_hash())

    obs_metrics.inc("updates/batches")
    obs_metrics.inc("updates/edges_removed", int(removed.size))
    obs_metrics.inc("updates/edges_added", int(added.size))

    return UpdateResult(
        hypergraph=new_H,
        removed=removed,
        added=added,
        dirty_vertices=dirty,
        ignored_removals=ignored,
        parent_hash=parent_hash,
        parent_chain=chain_parent,
        chain=chain,
    )


def feed_tracker(tracker: DeltaTracker, result: UpdateResult, old: Hypergraph) -> None:
    """Advance a :class:`DeltaTracker` across one update batch.

    *old* must be the pre-update hypergraph the tracker currently models;
    after the call it models ``result.hypergraph``.  Cost is
    O(changed edges · 2^d) — the whole point of the exact diff.
    """
    tracker.remove_edges(_edge_ids_tuples(old.store, result.removed))
    tracker.add_edges(_edge_ids_tuples(result.hypergraph.store, result.added))
