"""Hypergraph update operations used by the algorithms.

These are the primitive transformations of the BL cleanup phase
(Algorithm 2, lines 13–24) and the SBL commit phase (Algorithm 1, lines
12–20).  All operations are pure: they take a :class:`Hypergraph` and
return a new one over the same universe.

A note on the superset rule: Algorithm 2's pseudocode reads
``if e ⊆ e′ then E′ ← E′ \\ e`` which removes the *smaller* edge — a typo
in the paper.  Removing the smaller edge would weaken the independence
constraint (a set containing ``e`` but not ``e′`` would wrongly become
independent).  The correct and standard operation (as in Kelsen 1992) drops
the *superset* ``e′``: whenever ``e ⊆ e′``, the constraint "``e`` is not
fully blue" already implies "``e′`` is not fully blue", so ``e′`` is
redundant.  :func:`remove_superset_edges` implements the correct rule.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "trim_vertices",
    "remove_edges_touching",
    "remove_superset_edges",
    "remove_singleton_edges",
    "normalize",
    "normalize_after_trim",
]


def _as_mask(universe: int, vertices: Iterable[int] | np.ndarray) -> np.ndarray:
    idx = np.asarray(
        list(vertices) if not isinstance(vertices, np.ndarray) else vertices,
        dtype=np.intp,
    )
    mask = np.zeros(universe, dtype=bool)
    if idx.size:
        if idx.min() < 0 or idx.max() >= universe:
            raise IndexError("vertex outside universe")
        mask[idx] = True
    return mask


def trim_vertices(H: Hypergraph, vertices: Iterable[int] | np.ndarray) -> Hypergraph:
    """Remove *vertices* from every edge and from the active vertex set.

    This is ``e ← e \\ I′`` (Algorithm 2 line 14 / Algorithm 1 line 19)
    combined with ``V′ ← V′ \\ I′``.  An edge that becomes empty would mean
    that an edge was entirely inside the set being committed to the
    independent set — a correctness violation — so this raises
    ``ValueError`` rather than silently producing an empty edge.
    """
    mask = _as_mask(H.universe, vertices)
    new_edges = []
    for e in H.edges:
        t = tuple(v for v in e if not mask[v])
        if not t:
            raise ValueError(
                f"edge {e} became empty: the removed set contains a full edge"
            )
        new_edges.append(t)
    remaining = H.vertices[~mask[H.vertices]]
    return Hypergraph(H.universe, new_edges, vertices=remaining)


def remove_edges_touching(H: Hypergraph, vertices: Iterable[int] | np.ndarray) -> Hypergraph:
    """Drop every edge with at least one endpoint among *vertices*.

    This is SBL's red-vertex discard (Algorithm 1 lines 13–17): an edge
    containing a permanently red vertex can never become fully blue, so its
    constraint is vacuous.  The active vertex set is unchanged.
    """
    mask = _as_mask(H.universe, vertices)
    touched = set(H.edges_touching(mask).tolist())
    if not touched:
        return H
    keep = [e for i, e in enumerate(H.edges) if i not in touched]
    return H.replace(edges=keep)


def remove_superset_edges(H: Hypergraph) -> Hypergraph:
    """Drop every edge that (properly) contains another edge.

    Keeps the inclusion-minimal edges; their constraints imply all the
    dropped ones.  Uses the min-degree-pivot trick: an edge ``e′`` can only
    be a superset of edges incident to its least-loaded vertex, so we check
    containment only against those — O(Σ_e deg_min(e)·|e|) instead of
    O(m²·d).
    """
    edges = H.edges
    m = len(edges)
    if m <= 1:
        return H
    edge_sets = [frozenset(e) for e in edges]
    adj = H.vertex_to_edges()
    keep = np.ones(m, dtype=bool)
    for j, e in enumerate(edges):
        # Any superset of e must contain every vertex of e — in particular
        # e's least-loaded vertex, so scanning that vertex's edge list finds
        # all candidate supersets.
        pivot = min(e, key=lambda v: len(adj[v]))
        for i in adj[pivot]:
            if i == j or not keep[i]:
                continue
            if len(edges[i]) > len(e) and edge_sets[j] < edge_sets[i]:
                keep[i] = False
    if keep.all():
        return H  # nothing dropped: avoid a rebuild on the common path
    return H.replace(edges=[edges[i] for i in np.flatnonzero(keep).tolist()])


def remove_singleton_edges(H: Hypergraph) -> tuple[Hypergraph, np.ndarray]:
    """Remove singleton edges ``{v}`` together with their vertices.

    A vertex carrying a singleton edge can never join the independent set;
    Algorithm 2 (lines 21–24) deletes both the edge and the vertex.  Returns
    the new hypergraph and the array of vertices removed this way (they are
    implicitly colored red).
    """
    singles = sorted({e[0] for e in H.edges if len(e) == 1})
    if not singles:
        return H, np.empty(0, dtype=np.intp)
    removed = np.asarray(singles, dtype=np.intp)
    mask = _as_mask(H.universe, removed)
    # Edges containing a removed vertex: singleton ones disappear; larger
    # ones keep constraining the surviving vertices only if all their
    # vertices survive — but a red vertex in an edge makes the constraint
    # vacuous, so we drop every touching edge (same reasoning as
    # remove_edges_touching).
    touched = set(H.edges_touching(mask).tolist())
    keep = [e for i, e in enumerate(H.edges) if i not in touched]
    remaining = H.vertices[~mask[H.vertices]]
    return Hypergraph(H.universe, keep, vertices=remaining), removed


def normalize_after_trim(
    H: Hypergraph, vertices: Iterable[int] | np.ndarray
) -> tuple[Hypergraph, np.ndarray]:
    """Fused ``trim_vertices`` + ``normalize`` for an already-normal input.

    Precondition: *H* is superset-free with no singleton edges (the state
    every BL/permutation round leaves behind).  After removing *vertices*
    from all edges, any new ``e ⊆ e′`` pair must involve an edge that
    shrank — an untouched pair would have violated normality before the
    trim — so the containment scan is restricted to the changed edges, in
    both roles (shrunken edge as the new subset, or as a superset another
    edge shrank onto… i.e. became equal to, which canonical dedup already
    handles; the remaining case is a changed edge swallowing an untouched
    one).  Singleton cleanup needs a single pass: dropping edges never
    creates new singletons or supersets.

    Produces exactly the same hypergraph as
    ``normalize(trim_vertices(H, vertices))`` (differentially tested);
    returns ``(H_clean, red_vertices)`` with the same meaning.

    Raises
    ------
    ValueError
        If an edge would become empty (the removed set contains a full
        edge — a correctness violation upstream).
    """
    mask = _as_mask(H.universe, vertices)
    changed_idx = set(H.edges_touching(mask).tolist())
    old_edges = H.edges

    # Trim, dedupe canonically, remember which surviving edges changed.
    seen: dict[tuple[int, ...], bool] = {}  # edge -> changed?
    for i, e in enumerate(old_edges):
        if i in changed_idx:
            t = tuple(v for v in e if not mask[v])
            if not t:
                raise ValueError(
                    f"edge {e} became empty: the removed set contains a full edge"
                )
            # A dedup collision means an edge shrank onto another: the
            # surviving copy counts as changed.
            seen[t] = True
        else:
            if e not in seen:
                seen[e] = False

    edges = list(seen.keys())
    changed = [seen[e] for e in edges]
    alive = [True] * len(edges)
    edge_sets = [frozenset(e) for e in edges]
    adj: dict[int, list[int]] = {}
    for i, e in enumerate(edges):
        for v in e:
            adj.setdefault(v, []).append(i)

    for j, is_changed in enumerate(changed):
        if not is_changed or not alive[j]:
            continue
        ej = edge_sets[j]
        # (a) j as subset: supersets of j must contain j's pivot vertex.
        pivot = min(edges[j], key=lambda v: len(adj[v]))
        for i in adj[pivot]:
            if i != j and alive[i] and len(edges[i]) > len(edges[j]) and ej < edge_sets[i]:
                alive[i] = False
        # (b) j as superset of an untouched (or changed) smaller edge:
        # candidates live in the adjacency of j's vertices.
        if alive[j]:
            cand: set[int] = set()
            for v in edges[j]:
                cand.update(adj[v])
            for k in cand:
                if k != j and alive[k] and len(edges[k]) < len(edges[j]) and edge_sets[k] < ej:
                    alive[j] = False
                    break

    # Single singleton pass (dropping edges creates no new singletons).
    red_set = {edges[i][0] for i in range(len(edges)) if alive[i] and len(edges[i]) == 1}
    if red_set:
        for i in range(len(edges)):
            if alive[i] and (set(edges[i]) & red_set):
                alive[i] = False

    final_edges = [edges[i] for i in range(len(edges)) if alive[i]]
    removed = mask.copy()
    for v in red_set:
        removed[v] = True
    remaining = H.vertices[~removed[H.vertices]]
    H_new = Hypergraph(H.universe, final_edges, vertices=remaining)
    return H_new, np.asarray(sorted(red_set), dtype=np.intp)


def normalize(H: Hypergraph) -> tuple[Hypergraph, np.ndarray]:
    """Full BL cleanup: iterate superset- and singleton-removal to a fixed point.

    Returns ``(H_clean, red_vertices)`` where *red_vertices* are the
    vertices removed because they carried singleton edges.  The loop runs
    until neither rule fires; each iteration strictly decreases
    ``m + n`` so it terminates.
    """
    red: list[int] = []
    while True:
        H2 = remove_superset_edges(H)
        H3, removed = remove_singleton_edges(H2)
        red.extend(removed.tolist())
        if H3 is H or (
            H3.num_edges == H.num_edges and H3.num_vertices == H.num_vertices
        ):
            return H3, np.asarray(sorted(red), dtype=np.intp)
        H = H3
