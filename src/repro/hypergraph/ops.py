"""Hypergraph update operations used by the algorithms.

These are the primitive transformations of the BL cleanup phase
(Algorithm 2, lines 13–24) and the SBL commit phase (Algorithm 1, lines
12–20).  All operations are pure: they take a :class:`Hypergraph` and
return a new one over the same universe.

All of them are masked array operations over the CSR edge store: edge
selections reuse the canonical arrays through the trusted construction
path (:meth:`Hypergraph._from_arrays`), containment testing is a sparse
incidence Gram product, and the trim is a single boolean gather — there
are no per-edge Python loops left on these paths (the pure-Python
versions survive in :mod:`repro.core.reference` for differential tests).

A note on the superset rule: Algorithm 2's pseudocode reads
``if e ⊆ e′ then E′ ← E′ \\ e`` which removes the *smaller* edge — a typo
in the paper.  Removing the smaller edge would weaken the independence
constraint (a set containing ``e`` but not ``e′`` would wrongly become
independent).  The correct and standard operation (as in Kelsen 1992) drops
the *superset* ``e′``: whenever ``e ⊆ e′``, the constraint "``e`` is not
fully blue" already implies "``e′`` is not fully blue", so ``e′`` is
redundant.  :func:`remove_superset_edges` implements the correct rule.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
import scipy.sparse as sp

from repro.hypergraph.edgestore import EdgeStore
from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "trim_vertices",
    "remove_edges_touching",
    "remove_superset_edges",
    "remove_singleton_edges",
    "normalize",
    "normalize_after_trim",
]

#: Above this estimated Gram-product size the vectorised superset scan
#: would allocate too much; fall back to the min-degree-pivot loop.
_GRAM_NNZ_LIMIT = 200_000_000


def _as_mask(universe: int, vertices: Iterable[int] | np.ndarray) -> np.ndarray:
    idx = np.asarray(
        list(vertices) if not isinstance(vertices, np.ndarray) else vertices,
        dtype=np.intp,
    )
    mask = np.zeros(universe, dtype=bool)
    if idx.size:
        if idx.min() < 0 or idx.max() >= universe:
            raise IndexError("vertex outside universe")
        mask[idx] = True
    return mask


def trim_vertices(H: Hypergraph, vertices: Iterable[int] | np.ndarray) -> Hypergraph:
    """Remove *vertices* from every edge and from the active vertex set.

    This is ``e ← e \\ I′`` (Algorithm 2 line 14 / Algorithm 1 line 19)
    combined with ``V′ ← V′ \\ I′``.  An edge that becomes empty would mean
    that an edge was entirely inside the set being committed to the
    independent set — a correctness violation — so this raises
    ``ValueError`` rather than silently producing an empty edge.
    """
    mask = _as_mask(H.universe, vertices)
    store = H.store.trim(mask)[0]
    remaining = H.vertices[~mask[H.vertices]]
    return Hypergraph._from_arrays(H.universe, store, remaining)


def remove_edges_touching(H: Hypergraph, vertices: Iterable[int] | np.ndarray) -> Hypergraph:
    """Drop every edge with at least one endpoint among *vertices*.

    This is SBL's red-vertex discard (Algorithm 1 lines 13–17): an edge
    containing a permanently red vertex can never become fully blue, so its
    constraint is vacuous.  The active vertex set is unchanged.
    """
    mask = _as_mask(H.universe, vertices)
    if H.num_edges == 0:
        return H
    touched = mask[H.store.indices]
    if not touched.any():
        return H
    keep = np.add.reduceat(touched.astype(np.intp), H.store.indptr[:-1]) == 0
    return Hypergraph._from_arrays(H.universe, H.store.select(keep), H._vertices)


def _superset_drop_mask(store: EdgeStore, universe: int) -> np.ndarray:
    """Boolean mask of edges that properly contain another edge.

    One sparse Gram product ``A @ Aᵀ`` of the incidence matrix gives all
    pairwise intersection sizes; edge *j* is contained in edge *i* exactly
    when ``|e_j ∩ e_i| = |e_j|`` (and, the store being duplicate-free,
    ``|e_i| > |e_j|``).  Containment is transitive, so dropping every such
    *i* — regardless of whether its witness *j* also gets dropped — leaves
    precisely the inclusion-minimal edges.
    """
    sizes = store.sizes()
    A = sp.csr_matrix(
        (np.ones(store.indices.size, dtype=np.int64), store.indices, store.indptr),
        shape=(store.num_edges, universe),
    )
    inter = (A @ A.T).tocoo()
    contained = (inter.data == sizes[inter.row]) & (sizes[inter.col] > sizes[inter.row])
    drop = np.zeros(store.num_edges, dtype=bool)
    drop[inter.col[contained]] = True
    return drop


def _superset_drop_mask_pivot(H: Hypergraph) -> np.ndarray:
    """Fallback superset scan via the min-degree pivot (bounded memory).

    An edge ``e′`` can only be a superset of edges incident to its
    least-loaded vertex, so containment is checked only against those —
    O(Σ_e deg_min(e)·|e|) instead of O(m²·d).
    """
    edges = H.edges
    m = len(edges)
    edge_sets = [frozenset(e) for e in edges]
    adj = H.vertex_to_edges()
    drop = np.zeros(m, dtype=bool)
    for j, e in enumerate(edges):
        pivot = min(e, key=lambda v: len(adj[v]))
        for i in adj[pivot]:
            if i != j and len(edges[i]) > len(e) and edge_sets[j] < edge_sets[i]:
                drop[i] = True
    return drop


def _gram_nnz_estimate(store: EdgeStore, universe: int) -> int:
    """Upper bound on the Gram product's nnz: Σ_v deg(v)²."""
    deg = np.bincount(store.indices, minlength=universe)
    return int((deg.astype(np.int64) ** 2).sum())


def remove_superset_edges(H: Hypergraph) -> Hypergraph:
    """Drop every edge that (properly) contains another edge.

    Keeps the inclusion-minimal edges; their constraints imply all the
    dropped ones.  Vectorised as one sparse incidence Gram product (with a
    min-degree-pivot fallback when the product would be too dense).
    """
    if H.num_edges <= 1:
        return H
    if _gram_nnz_estimate(H.store, H.universe) <= _GRAM_NNZ_LIMIT:
        drop = _superset_drop_mask(H.store, H.universe)
    else:
        drop = _superset_drop_mask_pivot(H)
    if not drop.any():
        return H  # nothing dropped: avoid a rebuild on the common path
    return Hypergraph._from_arrays(H.universe, H.store.select(~drop), H._vertices)


def remove_singleton_edges(H: Hypergraph) -> tuple[Hypergraph, np.ndarray]:
    """Remove singleton edges ``{v}`` together with their vertices.

    A vertex carrying a singleton edge can never join the independent set;
    Algorithm 2 (lines 21–24) deletes both the edge and the vertex.  Returns
    the new hypergraph and the array of vertices removed this way (they are
    implicitly colored red).
    """
    store = H.store
    sizes = H.edge_sizes()
    single = sizes == 1
    if not single.any():
        return H, np.empty(0, dtype=np.intp)
    removed = np.unique(store.indices[store.position_mask(single)])
    mask = np.zeros(H.universe, dtype=bool)
    mask[removed] = True
    # Edges containing a removed vertex: singleton ones disappear; larger
    # ones keep constraining the surviving vertices only if all their
    # vertices survive — but a red vertex in an edge makes the constraint
    # vacuous, so we drop every touching edge (same reasoning as
    # remove_edges_touching).
    touched = np.add.reduceat(mask[store.indices].astype(np.intp), store.indptr[:-1]) > 0
    remaining = H.vertices[~mask[H.vertices]]
    return (
        Hypergraph._from_arrays(H.universe, store.select(~touched), remaining),
        removed,
    )


def _restricted_intersections(
    store: EdgeStore, universe: int, changed: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Intersection sizes between the changed edges and all edges.

    Returns COO-style triplets ``(jrow, col, inter)``: for every pair of a
    changed edge *jrow* and an edge *col* sharing at least one vertex,
    ``inter = |e_jrow ∩ e_col|``.  This is the restricted Gram product
    ``A[changed] @ Aᵀ`` computed with gathers and one ``np.unique`` — no
    sparse-matrix objects are built on the per-round path (their
    constructor overhead dominated the round at typical sizes).
    """
    sizes = store.sizes()
    m = store.num_edges
    indices = store.indices
    # CSC transpose of the incidence: edges grouped by vertex.
    row_of = np.repeat(np.arange(m, dtype=np.intp), sizes)
    csc_rows = row_of[np.argsort(indices, kind="stable")]
    deg = np.bincount(indices, minlength=universe)
    csc_indptr = np.zeros(universe + 1, dtype=np.intp)
    np.cumsum(deg, out=csc_indptr[1:])

    changed_idx = np.flatnonzero(changed)
    pos = store.position_mask(changed)
    verts = indices[pos]  # vertices of changed edges, with edge multiplicity
    owner = row_of[pos]  # owning changed edge per slot
    cnt = deg[verts]
    out_ptr = np.zeros(cnt.size + 1, dtype=np.intp)
    np.cumsum(cnt, out=out_ptr[1:])
    within = np.arange(int(out_ptr[-1]), dtype=np.intp) - np.repeat(out_ptr[:-1], cnt)
    neighbors = csc_rows[np.repeat(csc_indptr[verts], cnt) + within]
    owners = np.repeat(np.searchsorted(changed_idx, owner), cnt)
    # One key per (changed edge, neighbor edge) incidence; the multiplicity
    # of a key is exactly the intersection size.
    key = owners * m + neighbors
    uk, inter = np.unique(key, return_counts=True)
    jloc, col = np.divmod(uk, m)
    return changed_idx[jloc], col, inter


def normalize_after_trim(
    H: Hypergraph,
    vertices: Iterable[int] | np.ndarray,
    *,
    collect_diff: bool = False,
) -> tuple[Hypergraph, np.ndarray] | tuple[
    Hypergraph, np.ndarray, list[tuple[int, ...]], list[tuple[int, ...]]
]:
    """Fused ``trim_vertices`` + ``normalize`` for an already-normal input.

    Precondition: *H* is superset-free with no singleton edges (the state
    every BL/permutation round leaves behind).  After removing *vertices*
    from all edges, any new ``e ⊆ e′`` pair must involve an edge that
    shrank — an untouched pair would have violated normality before the
    trim — so the containment scan is restricted to the changed edges: the
    Gram product runs between the changed rows and the full incidence
    matrix rather than all-pairs.  (A dedup collision counts the surviving
    edge as changed — an edge shrinking *onto* another.)  Singleton cleanup
    needs a single pass: dropping edges never creates new singletons or
    supersets.

    Produces exactly the same hypergraph as
    ``normalize(trim_vertices(H, vertices))`` (differentially tested);
    returns ``(H_clean, red_vertices)`` with the same meaning.

    With ``collect_diff=True`` the return gains the exact edge diff,
    ``(H_clean, red, removed_edges, added_edges)``: the edge tuples of *H*
    that are not in the result and vice versa.  The masks the trim already
    tracks (which input edges shrank; which output tuples pre-existed)
    determine this without any set comparison, which is what keeps the
    cross-round Δ-tracker update O(changed) in :func:`repro.core.bl.beame_luby`.

    Raises
    ------
    ValueError
        If an edge would become empty (the removed set contains a full
        edge — a correctness violation upstream).
    """
    mask = _as_mask(H.universe, vertices)
    store, changed, any_change, changed_in, present = H.store.trim(mask)
    removed_active = mask
    sizes = store.sizes()
    alive = np.ones(store.num_edges, dtype=bool)

    if any_change and changed.any() and store.num_edges > 1:
        jrow, col, inter = _restricted_intersections(store, H.universe, changed)
        # Pair (j, i): j a changed edge, i any edge, inter = |e_j ∩ e_i|.
        # Either side of a containment pair may be the superset; the store
        # being duplicate-free, sizes break the tie.
        sub = (inter == sizes[jrow]) & (sizes[col] > sizes[jrow])
        alive[col[sub]] = False  # column edge swallows a changed edge
        sup = (inter == sizes[col]) & (sizes[jrow] > sizes[col])
        alive[jrow[sup]] = False  # changed edge swallows a column edge

    # Single singleton pass (dropping edges creates no new singletons).
    single_alive = alive & (sizes == 1)
    if single_alive.any():
        red = np.unique(store.indices[store.position_mask(single_alive)])
        red_mask = np.zeros(H.universe, dtype=bool)
        red_mask[red] = True
        if store.num_edges:
            touch = (
                np.add.reduceat(
                    red_mask[store.indices].astype(np.intp), store.indptr[:-1]
                )
                > 0
            )
            alive &= ~touch
        removed_active = mask | red_mask
    else:
        red = np.empty(0, dtype=np.intp)

    all_alive = alive.all()
    final = store if all_alive else store.select(alive)
    remaining = H.vertices[~removed_active[H.vertices]]
    H_clean = Hypergraph._from_arrays(H.universe, final, remaining)
    if not collect_diff:
        return H_clean, red
    # Exact edge diff from the trim's bookkeeping:
    #   removed = input edges that shrank, plus surviving pre-existing
    #             tuples that the cleanup dropped;
    #   added   = kept output edges whose tuple did not exist in the input.
    removed_edges = list(H.store.select(changed_in).edge_tuples()) if any_change else []
    if not all_alive:
        dropped_present = present & ~alive
        if dropped_present.any():
            removed_edges.extend(store.select(dropped_present).edge_tuples())
    new_kept = alive & ~present if any_change else np.zeros(0, dtype=bool)
    added_edges = list(store.select(new_kept).edge_tuples()) if new_kept.any() else []
    return H_clean, red, removed_edges, added_edges


def normalize(H: Hypergraph) -> tuple[Hypergraph, np.ndarray]:
    """Full BL cleanup: iterate superset- and singleton-removal to a fixed point.

    Returns ``(H_clean, red_vertices)`` where *red_vertices* are the
    vertices removed because they carried singleton edges.  The loop runs
    until neither rule fires; each iteration strictly decreases
    ``m + n`` so it terminates.
    """
    red: list[int] = []
    while True:
        H2 = remove_superset_edges(H)
        H3, removed = remove_singleton_edges(H2)
        red.extend(removed.tolist())
        if H3 is H or (
            H3.num_edges == H.num_edges and H3.num_vertices == H.num_vertices
        ):
            return H3, np.asarray(sorted(red), dtype=np.intp)
        H = H3
