"""Transversal (hitting-set) duality.

A set ``T ⊆ V`` is a **transversal** of ``H`` when it meets every edge.
Complementation gives an exact duality with independence:

* ``I`` is independent ⟺ ``V \\ I`` is a transversal
  (no edge inside ``I`` ⟺ every edge has a vertex outside ``I``);
* ``I`` is a *maximal* independent set ⟺ ``V \\ I`` is a *minimal*
  transversal (a vertex could leave ``T`` iff it could join ``I``).

So every MIS algorithm in :mod:`repro.core` doubles as a parallel
**minimal hitting set** algorithm — the form in which the MIS primitive
appears in many applications (blocking sets, diagnosis, monotone
dualisation).  This module provides the translation layer plus direct
validators, and the property tests pin the duality down exactly.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.util.rng import SeedLike

__all__ = [
    "is_transversal",
    "is_minimal_transversal",
    "complement",
    "minimal_transversal",
]


def _member_mask(H: Hypergraph, members: Iterable[int] | np.ndarray) -> np.ndarray:
    idx = np.asarray(
        list(members) if not isinstance(members, np.ndarray) else members,
        dtype=np.intp,
    )
    mask = np.zeros(H.universe, dtype=bool)
    if idx.size:
        if idx.min() < 0 or idx.max() >= H.universe:
            raise IndexError("member outside universe")
        mask[idx] = True
    return mask


def is_transversal(H: Hypergraph, members: Iterable[int] | np.ndarray) -> bool:
    """Does *members* intersect every edge?  (Vacuously true when edgeless.)"""
    mask = _member_mask(H, members)
    if not H.num_edges:
        return True
    counts = H.incidence() @ mask.astype(np.int64)
    return bool((counts > 0).all())


def is_minimal_transversal(H: Hypergraph, members: Iterable[int] | np.ndarray) -> bool:
    """Is *members* a transversal none of whose vertices is redundant?

    Only vertices in the active set are considered; a transversal
    containing an inactive or edge-free vertex is non-minimal exactly when
    that vertex hits no otherwise-unhit edge — which for an edge-free
    vertex is always.
    """
    mask = _member_mask(H, members)
    if not is_transversal(H, members):
        return False
    if not H.num_edges:
        return not mask.any()
    counts = H.incidence() @ mask.astype(np.int64)
    # v is essential iff some edge is hit only by v.
    essential = np.zeros(H.universe, dtype=bool)
    singly_hit = np.flatnonzero(counts == 1)
    edges = H.edges
    for i in singly_hit.tolist():
        for v in edges[i]:
            if mask[v]:
                essential[v] = True
                break
    return bool((essential[mask]).all() if mask.any() else True)


def complement(H: Hypergraph, members: Iterable[int] | np.ndarray) -> np.ndarray:
    """``V \\ members`` over the *active* vertex set, sorted."""
    mask = _member_mask(H, members)
    active = H.vertices
    return active[~mask[active]]


def minimal_transversal(
    H: Hypergraph,
    algorithm: Callable[..., Any],
    seed: SeedLike = None,
    **options,
) -> np.ndarray:
    """A minimal transversal via any MIS algorithm (the duality in action).

    *algorithm* is any :mod:`repro.core` solver (duck-typed: its result
    must expose ``independent_set``).  Returns the sorted vertex ids of
    ``V \\ MIS``.
    """
    res = algorithm(H, seed, **options)
    return complement(H, res.independent_set)
