"""Independence / maximality validation.

The correctness contract of every MIS algorithm in :mod:`repro.core` is
checked against these validators, which implement the definitions directly:

* a set ``I`` is **independent** in ``H`` iff no edge is contained in ``I``;
* an independent ``I`` is **maximal** iff for every vertex ``v ∉ I`` the set
  ``I ∪ {v}`` is dependent.

Violations are reported as rich exception objects carrying a concrete
witness (the offending edge or the extendable vertex), which the
failure-injection experiment (E13) relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "IndependenceViolation",
    "MaximalityViolation",
    "is_independent",
    "is_maximal_independent",
    "check_mis",
    "find_independence_witness",
    "find_maximality_witness",
]


@dataclass
class IndependenceViolation(Exception):
    """Raised by :func:`check_mis` when an edge lies fully inside the set."""

    edge: tuple[int, ...]

    def __str__(self) -> str:
        return f"set contains edge {self.edge}"


@dataclass
class MaximalityViolation(Exception):
    """Raised by :func:`check_mis` when some vertex could be added."""

    vertex: int

    def __str__(self) -> str:
        return f"vertex {self.vertex} can be added without creating an edge"


def _member_mask(H: Hypergraph, members: Iterable[int] | np.ndarray) -> np.ndarray:
    idx = np.asarray(
        list(members) if not isinstance(members, np.ndarray) else members,
        dtype=np.intp,
    )
    mask = np.zeros(H.universe, dtype=bool)
    if idx.size:
        if idx.min() < 0 or idx.max() >= H.universe:
            raise IndexError("member outside universe")
        mask[idx] = True
    return mask


def find_independence_witness(
    H: Hypergraph, members: Iterable[int] | np.ndarray
) -> tuple[int, ...] | None:
    """Return an edge fully contained in *members*, or ``None``.

    One sparse matvec over the incidence matrix.
    """
    mask = _member_mask(H, members)
    inside = H.edges_within(mask)
    if inside.size:
        return H.edges[int(inside[0])]
    return None


def is_independent(H: Hypergraph, members: Iterable[int] | np.ndarray) -> bool:
    """Does *members* contain no edge of *H*?"""
    return find_independence_witness(H, members) is None


def find_maximality_witness(
    H: Hypergraph, members: Iterable[int] | np.ndarray
) -> int | None:
    """Return a vertex of ``V \\ I`` whose addition keeps independence, or ``None``.

    Vectorised: vertex ``v`` is blocked iff some edge ``e ∋ v`` has all its
    *other* vertices in ``I``; per edge this means ``|e ∩ I| = |e| − 1`` and
    the one missing vertex is ``v``.  We compute per-edge member counts with
    one matvec, then scan only the near-complete edges.
    """
    mask = _member_mask(H, members)
    active = H.vertices
    candidates = active[~mask[active]]
    if candidates.size == 0:
        return None
    blocked = np.zeros(H.universe, dtype=bool)
    if H.num_edges:
        counts = H.incidence() @ mask.astype(np.int64)
        sizes = H.edge_sizes()
        near = counts == sizes - 1
        if near.any():
            # A near-complete edge has exactly one non-member vertex — the
            # vertex it blocks.  One gather over the near edges' positions.
            store = H.store
            blocked[
                store.indices[store.position_mask(near) & ~mask[store.indices]]
            ] = True
        # An edge of size 1 ({v}) blocks v whenever v ∉ I (counts==0==size-1).
    free = candidates[~blocked[candidates]]
    return int(free[0]) if free.size else None


def is_maximal_independent(H: Hypergraph, members: Iterable[int] | np.ndarray) -> bool:
    """Is *members* a maximal independent set of *H*?"""
    return (
        find_independence_witness(H, members) is None
        and find_maximality_witness(H, members) is None
    )


def check_mis(H: Hypergraph, members: Iterable[int] | np.ndarray) -> None:
    """Assert that *members* is an MIS of *H*; raise a witnessed violation otherwise.

    Raises
    ------
    IndependenceViolation
        If some edge lies fully inside the set.
    MaximalityViolation
        If some vertex outside the set could be added.
    """
    edge = find_independence_witness(H, members)
    if edge is not None:
        raise IndependenceViolation(edge)
    v = find_maximality_witness(H, members)
    if v is not None:
        raise MaximalityViolation(v)
