"""Hypergraph (de)serialisation.

Two formats:

* **Plain text** — a human-editable line format::

      # optional comments
      universe 10
      vertices 0 1 2 3 4 5 6 7 8 9      # optional; defaults to all
      0 1 2
      2 3
      4 5 6 7

  Each non-directive line is one edge (whitespace-separated vertex ids).

* **JSON** — ``{"universe": n, "vertices": [...], "edges": [[...], ...]}``.

Both round-trip through the canonical representation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO, Union

from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["dumps", "loads", "dump", "load", "to_json", "from_json"]

PathLike = Union[str, Path]


def dumps(H: Hypergraph) -> str:
    """Serialise to the plain-text format."""
    lines = [f"universe {H.universe}"]
    verts = H.vertices
    if verts.size != H.universe:
        lines.append("vertices " + " ".join(str(v) for v in verts.tolist()))
    for e in H.edges:
        lines.append(" ".join(str(v) for v in e))
    return "\n".join(lines) + "\n"


def loads(text: str) -> Hypergraph:
    """Parse the plain-text format."""
    universe: int | None = None
    vertices = None
    edges: list[tuple[int, ...]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if parts[0] == "universe":
            if len(parts) != 2:
                raise ValueError(f"line {lineno}: malformed universe directive")
            universe = int(parts[1])
        elif parts[0] == "vertices":
            vertices = [int(x) for x in parts[1:]]
        else:
            try:
                edges.append(tuple(int(x) for x in parts))
            except ValueError as exc:
                raise ValueError(f"line {lineno}: non-integer vertex id") from exc
    if universe is None:
        raise ValueError("missing 'universe' directive")
    return Hypergraph(universe, edges, vertices=vertices)


def dump(H: Hypergraph, fp: Union[TextIO, PathLike]) -> None:
    """Write the plain-text format to a file object or path."""
    text = dumps(H)
    if isinstance(fp, (str, Path)):
        Path(fp).write_text(text)
    else:
        fp.write(text)


def load(fp: Union[TextIO, PathLike]) -> Hypergraph:
    """Read the plain-text format from a file object or path."""
    if isinstance(fp, (str, Path)):
        return loads(Path(fp).read_text())
    return loads(fp.read())


def to_json(H: Hypergraph) -> str:
    """Serialise to a JSON string."""
    return json.dumps(
        {
            "universe": H.universe,
            "vertices": H.vertices.tolist(),
            "edges": [list(e) for e in H.edges],
        }
    )


def from_json(text: str) -> Hypergraph:
    """Parse the JSON format produced by :func:`to_json`."""
    obj = json.loads(text)
    try:
        return Hypergraph(
            int(obj["universe"]),
            [tuple(e) for e in obj["edges"]],
            vertices=obj.get("vertices"),
        )
    except KeyError as exc:
        raise ValueError(f"missing JSON field: {exc}") from exc
