"""Core MIS algorithms.

The paper's contribution and its surrounding cast:

* :func:`~repro.core.sbl.sbl` — the **SBL** algorithm (Algorithm 1,
  Theorem 1): dimension reduction by sampling + BL + KUW end-game.
* :func:`~repro.core.bl.beame_luby` — the **BL** marking algorithm
  (Algorithm 2), the subroutine Theorem 2 re-analyses for super-constant
  dimension.
* :func:`~repro.core.kuw.karp_upfal_wigderson` — the **KUW**
  ``O(√n)``-round general-hypergraph algorithm used as the end-game and as
  the baseline SBL must beat.
* :func:`~repro.core.greedy.greedy_mis` — the sequential linear-time
  baseline (and differential-testing ground truth).
* :func:`~repro.core.permutation.permutation_bl` — Beame–Luby's
  permutation algorithm (conjectured RNC; §1).
* :func:`~repro.core.luby.luby_mis` — Luby's graph-MIS algorithm, the
  d = 2 reference point.
* :func:`~repro.core.linear_mis.linear_hypergraph_mis` — the linear-
  hypergraph specialisation (Luczak–Szymanska's RNC class).

All algorithms return :class:`~repro.core.result.MISResult` and accept the
same ``(seed, machine, backend, trace)`` plumbing.
"""

from repro.core.bl import apply_bl_round, beame_luby, bl_marking_probability
from repro.core.decompose import solve_by_components
from repro.core.greedy import greedy_mis
from repro.core.kuw import karp_upfal_wigderson
from repro.core.linear_mis import is_linear, linear_hypergraph_mis
from repro.core.luby import luby_mis
from repro.core.permutation import permutation_bl
from repro.core.result import MISResult, RoundRecord
from repro.core.sbl import SBLFailure, sbl

__all__ = [
    "sbl",
    "SBLFailure",
    "beame_luby",
    "bl_marking_probability",
    "apply_bl_round",
    "solve_by_components",
    "karp_upfal_wigderson",
    "greedy_mis",
    "permutation_bl",
    "luby_mis",
    "linear_hypergraph_mis",
    "is_linear",
    "MISResult",
    "RoundRecord",
]
