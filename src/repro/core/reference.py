"""Pure-Python reference implementations for differential testing.

The production hot paths are vectorised (sparse incidence matvecs,
NumPy masks).  These references implement the same operations with plain
sets and loops, straight from the definitions; the test suite checks the
two agree on random inputs, and the ablation benchmark A1 measures the
speedup the vectorisation buys (one of DESIGN.md §5's decisions).
"""

from __future__ import annotations

from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "reference_fully_marked_edges",
    "reference_bl_round",
    "reference_superset_removal",
]


def reference_fully_marked_edges(H: Hypergraph, marked: set[int]) -> list[int]:
    """Indices of edges whose vertices are all in *marked* — per-edge loop."""
    return [i for i, e in enumerate(H.edges) if all(v in marked for v in e)]


def reference_bl_round(
    H: Hypergraph, marked: set[int]
) -> tuple[Hypergraph, set[int], set[int]]:
    """One BL round body on sets: returns ``(H_after, added, red)``.

    Mirrors :func:`repro.core.bl.apply_bl_round` exactly, including the
    cleanup fixed point (superset removal + singleton deletion).
    """
    marked = {v for v in marked if v in set(H.vertices.tolist())}
    # Unmark every vertex of every fully marked edge.
    unmark: set[int] = set()
    for e in H.edges:
        if all(v in marked for v in e):
            unmark.update(e)
    added = marked - unmark
    # Commit: drop added from vertices and edges.
    vertices = [v for v in H.vertices.tolist() if v not in added]
    edges = [tuple(v for v in e if v not in added) for e in H.edges]
    if any(len(e) == 0 for e in edges):
        raise ValueError("edge became empty — independence broken")
    # Cleanup fixed point.
    red: set[int] = set()
    while True:
        # superset removal (keep minimal edges)
        sets = [frozenset(e) for e in edges]
        keep = []
        for i, e in enumerate(edges):
            if not any(sets[j] < sets[i] for j in range(len(edges)) if j != i):
                keep.append(e)
        edges = keep
        # singleton removal
        singles = {e[0] for e in edges if len(e) == 1}
        if not singles:
            break
        red.update(singles)
        vertices = [v for v in vertices if v not in singles]
        edges = [e for e in edges if not (set(e) & singles)]
    H_after = Hypergraph(H.universe, edges, vertices=vertices)
    return H_after, added, red


def reference_superset_removal(H: Hypergraph) -> Hypergraph:
    """O(m²) superset removal straight from the definition."""
    sets = [frozenset(e) for e in H.edges]
    keep = [
        e
        for i, e in enumerate(H.edges)
        if not any(sets[j] < sets[i] for j in range(len(sets)) if j != i)
    ]
    return H.replace(edges=keep)
