"""The Beame–Luby (BL) marking algorithm (paper Algorithm 2).

One round:

1. compute the maximum normalised degree ``Δ(H)`` and set the marking
   probability ``p = 1 / (2^{d+1} Δ(H))``;
2. mark each active vertex independently with probability p;
3. for every fully marked edge, unmark *all* its vertices;
4. commit the surviving marked vertices ``I′`` to the independent set;
5. cleanup: remove ``I′`` from the vertex set, trim ``e ← e \\ I′``,
   discard edges containing other edges, and delete singleton edges
   together with their vertices (those vertices are permanently red).

Algorithm 2 as printed computes Δ and p once, before the loop; in practice
(and in Kelsen's per-stage analysis) the probability is recomputed from the
current hypergraph each round, which is the default here
(``recompute_probability=True``).  The paper-literal behaviour is available
for comparison.

Theorem 2 (as re-proved in §3.1) gives, for dimension
``d ≤ log⁽²⁾n / (4 log⁽³⁾n)``, termination in ``O((log n)^{(d+4)!})``
rounds with probability ``1 − n^{−Θ(log n log⁽²⁾n)}``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.result import MISResult, RoundRecord
from repro.hypergraph.degrees import DeltaTracker, degree_profile
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.ops import normalize, normalize_after_trim, trim_vertices
from repro.kernels.bl_dense import beame_luby_dense
from repro.kernels.bl_frontier import beame_luby_frontier
from repro.kernels.bl_scalar import beame_luby_scalar
from repro.kernels.dispatch import select_backend
from repro.kernels.jit import row_kernels
from repro.obs import metrics as obs_metrics
from repro.obs.tracer import NullTracer, Tracer, current_tracer
from repro.pram.backend import ExecutionBackend, SerialBackend
from repro.pram.machine import Machine, NullMachine
from repro.util.itlog import log2_ceil
from repro.util.rng import SeedLike, stream

__all__ = ["beame_luby", "bl_marking_probability", "apply_bl_round", "RoundCallback"]

#: Signature of the optional per-round instrumentation hook:
#: ``(record, H_before, H_after, marked_mask, added_ids) -> None``.
RoundCallback = Callable[[RoundRecord, Hypergraph, Hypergraph, np.ndarray, np.ndarray], None]

#: Hard default cap: Theorem 2's bound is polylog, so hitting this many
#: rounds on any reasonable instance indicates a bug, not bad luck.
DEFAULT_MAX_ROUNDS = 100_000


def bl_marking_probability(H: Hypergraph, profile=None) -> float:
    """``p = 1 / (2^{d+1} Δ(H))`` (Algorithm 2 line 2), clipped into (0, 1].

    For an edgeless hypergraph (Δ = 0) the probability is defined as 1 —
    every remaining vertex can be taken.
    """
    d = H.dimension
    prof = profile if profile is not None else degree_profile(H)
    delta = prof.delta()
    if delta <= 0:
        return 1.0
    return min(1.0, 1.0 / (2 ** (d + 1) * delta))


def apply_bl_round(
    W: Hypergraph,
    marked_mask: np.ndarray,
    backend: ExecutionBackend | None = None,
    *,
    assume_normal: bool = False,
    collect_diff: bool = False,
) -> tuple:
    """Apply one BL round body (steps 3–5) for a given marking.

    Deterministic given the marking, so it is the unit that the pure-Python
    reference implementation (:mod:`repro.core.reference`) is differentially
    tested against.

    Parameters
    ----------
    W:
        Current hypergraph.
    marked_mask:
        Boolean mask over the universe; marks outside the active vertex set
        are ignored.
    backend:
        Bulk-step executor for the per-edge counts.
    assume_normal:
        *W* is known superset-free with no singleton edges (true for every
        hypergraph a previous round produced); enables the fused
        incremental cleanup (:func:`~repro.hypergraph.ops.normalize_after_trim`),
        which restricts the containment scan to the edges the trim changed.
    collect_diff:
        Also return the exact edge diff of the round as a fifth element
        ``(removed_edges, added_edges)`` (tuples), consumed by the
        cross-round Δ tracker in :func:`beame_luby`.

    Returns
    -------
    (W_after, added, red, unmark_mask):
        The cleaned-up hypergraph, the vertex ids committed to the
        independent set, the vertices removed red by singleton cleanup, and
        the mask of vertices retracted by the unmarking step.  With
        ``collect_diff=True`` a fifth element ``(removed_edges, added_edges)``
        is appended.
    """
    be = backend if backend is not None else SerialBackend()
    if marked_mask.shape != (W.universe,):
        raise ValueError("marked_mask must cover the universe")
    marked = marked_mask & W.vertex_mask()
    unmark_mask = np.zeros(W.universe, dtype=bool)
    if W.num_edges:
        counts = be.edge_mark_counts(W.incidence(), marked)
        fully = counts == W.edge_sizes()
        if fully.any():
            # One scatter over the concatenated indices of fully-marked edges.
            store = W.store
            unmark_mask[store.indices[store.position_mask(fully)]] = True
    added = np.flatnonzero(marked & ~unmark_mask)
    if added.size == 0:
        # No survivors: on a normal hypergraph nothing can change; return
        # the same object so callers cache derived structures (profiles).
        if assume_normal:
            out = (W, added, np.empty(0, dtype=np.intp), unmark_mask)
            return out + (([], []),) if collect_diff else out
        W_after, red = normalize(W)
        if (
            red.size == 0
            and W_after.num_edges == W.num_edges
            and W_after.num_vertices == W.num_vertices
        ):
            W_after = W
        out = (W_after, added, red, unmark_mask)
        if collect_diff:
            removed_idx, added_idx = W.store.diff(W_after.store)
            out = out + (
                (
                    [W.store.edge(int(i)) for i in removed_idx],
                    [W_after.store.edge(int(i)) for i in added_idx],
                ),
            )
        return out
    if assume_normal and collect_diff:
        W_after, red, removed_edges, added_edges = normalize_after_trim(
            W, added, collect_diff=True
        )
        return W_after, added, red, unmark_mask, (removed_edges, added_edges)
    if assume_normal:
        W_after, red = normalize_after_trim(W, added)
    else:
        W_after, red = normalize(trim_vertices(W, added))
    out = (W_after, added, red, unmark_mask)
    if collect_diff:
        removed_idx, added_idx = W.store.diff(W_after.store)
        out = out + (
            (
                [W.store.edge(int(i)) for i in removed_idx],
                [W_after.store.edge(int(i)) for i in added_idx],
            ),
        )
    return out


def _charge_round(machine: Machine, n: int, m: int, total: int, d: int) -> None:
    """EREW charges for one BL round (see module docstring of repro.pram)."""
    # Δ recomputation: enumerate ≤ m·2^d subsets, tree-max them.
    subsets = m * (2 ** min(d, 20))
    machine.map(subsets)
    machine.reduce(subsets)
    # Marking: one coin per active vertex.
    machine.map(n)
    # Fully-marked test: per edge a tree-AND over its ≤ d vertices.
    if total:
        machine.charge(log2_ceil(max(d, 2)), total, total)
    # Unmark + commit + trim: constant passes over the edge lists.
    machine.map(total)
    machine.compact(n)
    # Cleanup (superset & singleton removal): pairwise subset tests with
    # m²·d processors at O(log d) depth — the poly(m,n) processor profile.
    if m > 1:
        machine.charge(log2_ceil(max(d, 2)) + 1, m * m * d, m * m * d)
    machine.sync()


def beame_luby(
    H: Hypergraph,
    seed: SeedLike = None,
    *,
    machine: Machine | None = None,
    backend: ExecutionBackend | None = None,
    recompute_probability: bool = True,
    marking_probability: float | None = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    trace: bool = True,
    on_round: RoundCallback | None = None,
    tracer: Tracer | NullTracer | None = None,
) -> MISResult:
    """Run BL to completion and return the MIS with a per-round trace.

    Parameters
    ----------
    H:
        Input hypergraph.
    seed:
        RNG seed; round *i* draws from an independent child stream, so the
        run is reproducible regardless of round count.
    machine:
        PRAM cost accountant (default: no accounting).
    backend:
        Execution backend for the bulk steps (default in-process).
    recompute_probability:
        Recompute ``p`` from the current hypergraph each round (default).
        ``False`` reproduces Algorithm 2 literally (p fixed up front).
    marking_probability:
        Override p entirely (used by experiments probing other choices).
    max_rounds:
        Abort with ``RuntimeError`` beyond this many rounds.
    trace:
        Record per-round statistics (cheap; disable for micro-benchmarks).
    on_round:
        Optional instrumentation hook called after every round.
    tracer:
        Telemetry tracer; defaults to the ambient
        :func:`~repro.obs.tracer.current_tracer` (a no-op unless a run
        installed one).  When enabled, the run emits ``bl/solve`` and
        ``bl/round`` spans and stamps ``extras["wall_ns"]`` on every
        round record.

    Returns
    -------
    MISResult
        With ``algorithm="bl"``; ``meta["p_initial"]`` records the first
        round's marking probability.
    """
    mach = machine if machine is not None else NullMachine()
    trc = tracer if tracer is not None else current_tracer()
    with trc.span(
        "bl/solve", machine=mach, n=H.num_vertices, m=H.num_edges, dim=H.dimension
    ) as span:
        # Shape dispatch: the dense engines cover the plain solve (and emit
        # the same per-round spans); anything holding CSR structures out to
        # the caller (an explicit execution backend, a per-round hook) pins
        # CSR.
        blockers: list[str] = []
        if backend is not None:
            blockers.append("backend")
        if on_round is not None:
            blockers.append("on_round")
        decision = select_backend(H, blockers=tuple(blockers))
        if decision.backend == "jit":
            result = beame_luby_dense(
                H, seed, mach, recompute_probability, marking_probability,
                max_rounds, trace, kern=row_kernels(True), trc=trc,
            )
        elif decision.dense and H.dimension > 3:
            result = beame_luby_frontier(
                H, seed, mach, recompute_probability, marking_probability,
                max_rounds, trace, trc=trc,
            )
        elif decision.dense:
            result = beame_luby_scalar(
                H, seed, mach, recompute_probability, marking_probability,
                max_rounds, trace, trc=trc,
            )
        else:
            result = _beame_luby(
                H, seed, mach, backend, recompute_probability, marking_probability,
                max_rounds, trace, on_round, trc,
            )
        if trc.enabled:
            span.set(rounds=result.num_rounds, mis_size=result.size)
    return result


def _beame_luby(
    H: Hypergraph,
    seed: SeedLike,
    mach: Machine,
    backend: ExecutionBackend | None,
    recompute_probability: bool,
    marking_probability: float | None,
    max_rounds: int,
    trace: bool,
    on_round: RoundCallback | None,
    trc: Tracer | NullTracer,
) -> MISResult:
    be = backend if backend is not None else SerialBackend()
    rng_stream = stream(seed)

    # One upfront cleanup (supersets, singletons) establishes the normal
    # form every round preserves; rounds then use the fused incremental
    # cleanup.  Singleton-edge vertices removed here could never join the
    # independent set, so the result is unchanged.
    W, pre_red = normalize(H)

    independent: list[int] = []
    records: list[RoundRecord] = []
    p_fixed: float | None = marking_probability
    p_initial: float | None = None
    # The Δ maxima are carried across rounds by *restriction*: a round's
    # successor differs from W only in the edges the trim touched, so the
    # tracker updates from the store diff instead of recomputing the full
    # profile (the identity-only cache this replaces only ever helped on
    # no-progress rounds).
    tracker: DeltaTracker | None = None

    for round_index in range(max_rounds):
        if W.num_vertices == 0:
            break
        if W.num_edges == 0:
            # No constraints remain: everything left is independent.
            n_left = W.num_vertices
            with trc.span(
                "bl/round", machine=mach, round=round_index, n=n_left, m=0
            ) as rspan:
                independent.extend(W.vertices.tolist())
                mach.map(n_left)
                if trc.enabled:
                    rspan.set(n_after=0, m_after=0, added=n_left)
            obs_metrics.inc("solver/vertices_committed", n_left)
            if trace:
                record = RoundRecord(
                    index=round_index,
                    phase="bl",
                    n_before=n_left,
                    m_before=0,
                    n_after=0,
                    m_after=0,
                    marked=n_left,
                    added=n_left,
                    dimension=0,
                )
                if trc.enabled:
                    record.extras["wall_ns"] = rspan.wall_ns
                records.append(record)
            W = W.replace(edges=(), vertices=np.empty(0, dtype=np.intp))
            break

        if tracker is None:
            tracker = DeltaTracker.from_hypergraph(W)
        profile = tracker  # same .delta()/.delta_i() surface as DegreeProfile
        if p_fixed is not None:
            p = p_fixed
        else:
            p = bl_marking_probability(W, profile)
            if not recompute_probability:
                p_fixed = p
        if p_initial is None:
            p_initial = p

        n_before, m_before = W.num_vertices, W.num_edges
        d_before = W.dimension
        total = W.total_edge_size

        with trc.span(
            "bl/round",
            machine=mach,
            round=round_index,
            n=n_before,
            m=m_before,
            dim=d_before,
        ) as rspan:
            # (2) mark active vertices.
            active = W.vertices
            coin = be.bernoulli(next(rng_stream), int(active.size), p)
            marked_mask = np.zeros(W.universe, dtype=bool)
            marked_mask[active[coin]] = True

            # (3)–(5) unmark fully marked edges, commit survivors, cleanup.
            W_after, added, red, unmark_mask, edge_diff = apply_bl_round(
                W, marked_mask, be, assume_normal=True, collect_diff=True
            )
            if added.size:
                independent.extend(added.tolist())

            _charge_round(mach, n_before, m_before, total, max(d_before, 1))
            unmarked_count = int((marked_mask & unmark_mask).sum())
            if trc.enabled:
                rspan.set(
                    n_after=W_after.num_vertices,
                    m_after=W_after.num_edges,
                    added=int(added.size),
                    unmarked=unmarked_count,
                    p=p,
                )
        obs_metrics.inc("solver/vertices_committed", int(added.size))
        obs_metrics.inc("solver/unmark_retractions", unmarked_count)

        record = RoundRecord(
            index=round_index,
            phase="bl",
            n_before=n_before,
            m_before=m_before,
            n_after=W_after.num_vertices,
            m_after=W_after.num_edges,
            marked=int(marked_mask.sum()),
            unmarked=unmarked_count,
            added=int(added.size),
            removed_red=int(red.size),
            dimension=d_before,
            extras={"p": p, "delta": profile.delta()},
        )
        if trc.enabled:
            record.extras["wall_ns"] = rspan.wall_ns
        if trace:
            records.append(record)
        if on_round is not None:
            on_round(record, W, W_after, marked_mask, added)
        if W_after is not W:
            removed_edges, added_edges = edge_diff
            if removed_edges:
                tracker.remove_edges(removed_edges)
            if added_edges:
                tracker.add_edges(added_edges)
        W = W_after
    else:
        raise RuntimeError(
            f"BL failed to terminate within {max_rounds} rounds "
            f"(n={H.num_vertices}, m={H.num_edges}, dim={H.dimension})"
        )

    result = MISResult(
        independent_set=np.asarray(independent, dtype=np.intp),
        algorithm="bl",
        n=H.num_vertices,
        m=H.num_edges,
        rounds=records,
        machine=mach.snapshot() if hasattr(mach, "snapshot") else None,
        meta={
            "p_initial": p_initial if p_initial is not None else 1.0,
            "recompute_probability": recompute_probability,
            "prenormalized_red": int(pre_red.size),
        },
    )
    return result
