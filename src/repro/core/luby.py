"""Luby's classic MIS algorithm for ordinary graphs (the d = 2 case).

Included as the d = 2 reference point of the survey (§1: "fast parallel
algorithms for MIS in graphs are well studied and very efficient"): on
2-uniform hypergraphs Luby's algorithm finishes in ``O(log n)`` rounds
w.h.p., the baseline against which the hypergraph algorithms' extra cost
is visible (experiment E10).

One round (Luby's Monte-Carlo variant A):

1. every remaining vertex marks itself with probability ``1/(2·deg(v))``
   (isolated vertices join outright);
2. for every edge with both endpoints marked, the endpoint of **smaller
   degree** unmarks (ties by smaller id);
3. marked vertices join ``I``; they and all their neighbours leave the
   graph.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import MISResult, RoundRecord
from repro.hypergraph.hypergraph import Hypergraph
from repro.obs import metrics as obs_metrics
from repro.obs.tracer import NullTracer, Tracer, current_tracer
from repro.pram.machine import Machine, NullMachine
from repro.util.rng import SeedLike, stream

__all__ = ["luby_mis"]

DEFAULT_MAX_ROUNDS = 100_000


def luby_mis(
    H: Hypergraph,
    seed: SeedLike = None,
    *,
    machine: Machine | None = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    trace: bool = True,
    tracer: Tracer | NullTracer | None = None,
) -> MISResult:
    """Run Luby's algorithm; requires a 2-uniform hypergraph (a graph).

    Raises
    ------
    ValueError
        If some edge has size ≠ 2.
    """
    if any(len(e) != 2 for e in H.edges):
        raise ValueError("luby_mis requires a 2-uniform hypergraph (a graph)")
    mach = machine if machine is not None else NullMachine()
    trc = tracer if tracer is not None else current_tracer()
    with trc.span(
        "luby/solve", machine=mach, n=H.num_vertices, m=H.num_edges, dim=2
    ) as span:
        result = _luby_mis(H, seed, mach, max_rounds, trace, trc)
        if trc.enabled:
            span.set(rounds=result.num_rounds, mis_size=result.size)
    return result


def _luby_mis(
    H: Hypergraph,
    seed: SeedLike,
    mach: Machine,
    max_rounds: int,
    trace: bool,
    trc: Tracer | NullTracer,
) -> MISResult:
    rng_stream = stream(seed)

    universe = H.universe
    edge_u = np.asarray([e[0] for e in H.edges], dtype=np.intp)
    edge_v = np.asarray([e[1] for e in H.edges], dtype=np.intp)
    alive_v = np.zeros(universe, dtype=bool)
    alive_v[H.vertices] = True
    alive_e = np.ones(edge_u.size, dtype=bool)
    in_I = np.zeros(universe, dtype=bool)
    records: list[RoundRecord] = []

    for round_index in range(max_rounds):
        active = np.flatnonzero(alive_v)
        if active.size == 0:
            break
        eu, ev = edge_u[alive_e], edge_v[alive_e]
        n_before = int(active.size)
        m_before = int(eu.size)

        with trc.span(
            "luby/round", machine=mach, round=round_index, n=n_before, m=m_before
        ) as rspan:
            deg = np.zeros(universe, dtype=np.int64)
            np.add.at(deg, eu, 1)
            np.add.at(deg, ev, 1)

            rng = next(rng_stream)
            prob = np.zeros(universe)
            prob[active] = np.where(
                deg[active] > 0, 1.0 / (2.0 * np.maximum(deg[active], 1)), 1.0
            )
            marked = np.zeros(universe, dtype=bool)
            marked[active] = rng.random(active.size) < prob[active]

            # Conflict resolution: on doubly marked edges the lower-priority
            # endpoint (smaller degree, then smaller id) unmarks.
            both = marked[eu] & marked[ev]
            if both.any():
                bu, bv = eu[both], ev[both]
                u_loses = (deg[bu] < deg[bv]) | ((deg[bu] == deg[bv]) & (bu < bv))
                losers = np.where(u_loses, bu, bv)
                marked[losers] = False

            winners = np.flatnonzero(marked)
            in_I[winners] = True
            # Remove winners and their neighbours.
            dead = marked.copy()
            touching = marked[eu] | marked[ev]
            dead[eu[touching]] = True
            dead[ev[touching]] = True
            alive_v &= ~dead
            alive_e &= alive_v[edge_u] & alive_v[edge_v]

            mach.map(n_before)
            mach.map(m_before)
            mach.reduce(max(m_before, 1))
            mach.sync()
            if trc.enabled:
                rspan.set(
                    n_after=int(alive_v.sum()),
                    m_after=int(alive_e.sum()),
                    added=int(winners.size),
                )
        obs_metrics.inc("solver/vertices_committed", int(winners.size))

        if trace:
            record = RoundRecord(
                index=round_index,
                phase="luby",
                n_before=n_before,
                m_before=m_before,
                n_after=int(alive_v.sum()),
                m_after=int(alive_e.sum()),
                marked=int(marked.sum() + (both.sum() if both.any() else 0)),
                added=int(winners.size),
                removed_red=int(dead.sum() - winners.size),
                dimension=2,
            )
            if trc.enabled:
                record.extras["wall_ns"] = rspan.wall_ns
            records.append(record)
    else:
        raise RuntimeError(f"Luby failed to terminate within {max_rounds} rounds")

    return MISResult(
        independent_set=np.flatnonzero(in_I),
        algorithm="luby",
        n=H.num_vertices,
        m=H.num_edges,
        rounds=records,
        machine=mach.snapshot() if hasattr(mach, "snapshot") else None,
        meta={},
    )
