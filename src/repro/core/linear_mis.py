"""MIS for *linear* hypergraphs (``|e ∩ e'| ≤ 1``).

Luczak and Szymanska (J. Algorithms 1997) proved that MIS of linear
hypergraphs is in RNC (paper §1 survey).  Their algorithm is a
marking/unmarking scheme of the Beame–Luby family whose analysis exploits
linearity: distinct edges share at most one vertex, so the events "edge e
is fully marked" are nearly independent and the degree-migration problem
that dominates Kelsen's analysis collapses.

Following DESIGN.md's substitution rule, this module implements the
linear-hypergraph front-end as a *verified specialisation* of our BL
engine: it checks linearity (raising otherwise), then runs BL with a
marking probability adapted to the linear structure
(``p = 1/(2·max_normalised_degree)`` — linearity removes the ``2^d``
safety factor BL needs against correlated edges: the unmark-probability
computation of Lemma 2 loses its union-bound blow-up when any two edges
through a vertex set share only that set).  Experiment E14 measures the
resulting polylog round counts on random linear instances.
"""

from __future__ import annotations

import itertools

from repro.core.bl import beame_luby
from repro.core.result import MISResult
from repro.hypergraph.degrees import degree_profile
from repro.hypergraph.hypergraph import Hypergraph
from repro.obs.tracer import NullTracer, Tracer, current_tracer
from repro.pram.backend import ExecutionBackend
from repro.pram.machine import Machine
from repro.util.rng import SeedLike

__all__ = ["is_linear", "linear_hypergraph_mis"]


def is_linear(H: Hypergraph) -> bool:
    """Check ``|e ∩ e'| ≤ 1`` for all pairs of distinct edges.

    Pairwise sharing is detected through pair occupancy: two distinct
    edges intersect in ≥ 2 vertices iff some vertex *pair* lies in two
    edges — O(Σ_e |e|²) with a set, no m² loop.
    """
    seen: set[tuple[int, int]] = set()
    for e in H.edges:
        for pair in itertools.combinations(e, 2):
            if pair in seen:
                return False
            seen.add(pair)
    return True


def linear_hypergraph_mis(
    H: Hypergraph,
    seed: SeedLike = None,
    *,
    machine: Machine | None = None,
    backend: ExecutionBackend | None = None,
    trace: bool = True,
    tracer: Tracer | NullTracer | None = None,
) -> MISResult:
    """MIS of a linear hypergraph via the specialised BL engine.

    Raises
    ------
    ValueError
        If *H* is not linear.
    """
    if not is_linear(H):
        raise ValueError("input is not a linear hypergraph (some |e ∩ e'| ≥ 2)")
    trc = tracer if tracer is not None else current_tracer()
    with trc.span(
        "linear/solve", machine=machine, n=H.num_vertices, m=H.num_edges,
        dim=H.dimension,
    ) as span:
        profile = degree_profile(H)
        delta = profile.delta()
        p = min(1.0, 1.0 / (2.0 * delta)) if delta > 0 else 1.0
        inner = beame_luby(
            H,
            seed,
            machine=machine,
            backend=backend,
            marking_probability=p,
            trace=trace,
            tracer=trc,
        )
        if trc.enabled:
            span.set(p=p, rounds=inner.num_rounds, mis_size=inner.size)
    return MISResult(
        independent_set=inner.independent_set,
        algorithm="linear",
        n=H.num_vertices,
        m=H.num_edges,
        rounds=inner.rounds,
        machine=inner.machine,
        meta={"p": p, **inner.meta},
    )
