"""Result and trace types shared by all MIS algorithms.

Every algorithm in :mod:`repro.core` returns a :class:`MISResult`: the
independent set plus a per-round trace rich enough to drive all the
experiments (round counts, per-round colored fractions, degree potentials,
PRAM cost snapshots) without re-running the algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.validate import check_mis

__all__ = ["RoundRecord", "MISResult"]


@dataclass
class RoundRecord:
    """Statistics for one round (one iteration of an algorithm's main loop).

    Attributes
    ----------
    index:
        0-based round number.
    phase:
        Which sub-algorithm produced the round (``"bl"``, ``"sbl"``,
        ``"kuw"``, …); SBL traces interleave phases.
    n_before, m_before:
        Active vertices / edges entering the round.
    n_after, m_after:
        Active vertices / edges leaving the round.
    marked:
        Vertices marked (sampled) this round.
    unmarked:
        Marked vertices retracted because an edge was fully marked.
    added:
        Vertices committed to the independent set this round.
    removed_red:
        Vertices permanently excluded this round (singleton cleanup, red
        colouring, discards).
    dimension:
        dim of the hypergraph entering the round.
    extras:
        Free-form per-round measurements (e.g. ``delta``, per-size Δ_k,
        sampled sub-hypergraph dimension, retry counts).
    """

    index: int
    phase: str
    n_before: int
    m_before: int
    n_after: int
    m_after: int
    marked: int = 0
    unmarked: int = 0
    added: int = 0
    removed_red: int = 0
    dimension: int = 0
    extras: dict[str, Any] = field(default_factory=dict)


@dataclass
class MISResult:
    """The output of an MIS algorithm run.

    Attributes
    ----------
    independent_set:
        Sorted vertex ids (over the input universe).
    algorithm:
        Canonical algorithm name.
    n, m:
        Input sizes.
    rounds:
        Per-round trace (may be empty when tracing is disabled).
    machine:
        Final PRAM cost snapshot (``{"depth": …, "work": …,
        "max_processors": …}``) or ``None`` when run on a NullMachine.
    meta:
        Free-form run metadata (parameters, retry counts, phase totals).
    """

    independent_set: np.ndarray
    algorithm: str
    n: int
    m: int
    rounds: list[RoundRecord] = field(default_factory=list)
    machine: Mapping[str, int] | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.independent_set = np.unique(
            np.asarray(self.independent_set, dtype=np.intp)
        )

    @property
    def size(self) -> int:
        """|I| — the number of vertices in the independent set."""
        return int(self.independent_set.size)

    @property
    def num_rounds(self) -> int:
        """Total recorded rounds."""
        return len(self.rounds)

    def rounds_in_phase(self, phase: str) -> list[RoundRecord]:
        """The trace records belonging to one phase."""
        return [r for r in self.rounds if r.phase == phase]

    def verify(self, H: Hypergraph) -> None:
        """Assert the result is an MIS of *H* (raises a witnessed violation)."""
        check_mis(H, self.independent_set)

    def summary(self) -> dict[str, Any]:
        """Compact dict for tables: algorithm, |I|, rounds, depth, work."""
        out: dict[str, Any] = {
            "algorithm": self.algorithm,
            "n": self.n,
            "m": self.m,
            "mis_size": self.size,
            "rounds": self.num_rounds,
        }
        if self.machine is not None:
            out["depth"] = self.machine.get("depth")
            out["work"] = self.machine.get("work")
        return out
