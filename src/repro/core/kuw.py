"""The Karp–Upfal–Wigderson (KUW) parallel MIS algorithm.

Karp, Upfal and Wigderson (JCSS 1988) gave an ``O(√n)``-round MIS algorithm
for general hypergraphs in an oracle model; the paper (§1) notes it "can be
adapted to run in time ``O(√n)·(log n + log m)`` with high probability on
``mn`` processors".  This module implements that adaptation in its standard
random-permutation form:

Each round, over the remaining candidates ``C`` (vertices neither committed
to ``I`` nor permanently blocked):

1. **filter**: discard every currently blocked candidate — a ``v ∈ C``
   such that some edge ``e ∋ v`` has ``e \\ {v} ⊆ I`` (testable for all
   candidates at once with ``mn`` processors; blocked is permanent since
   ``I`` only grows);
2. draw a uniformly random permutation ``π`` of the surviving ``C``;
3. for every edge ``e``, compute the earliest prefix of ``π`` whose union
   with ``I`` contains ``e`` — a parallel max over the positions of
   ``e ∩ C`` (valid only when ``e \\ C ⊆ I``);
4. the longest *safe* prefix length is ``L = min_e t(e) − 1`` (``|C|``
   when no edge constrains); commit the first ``L`` vertices to ``I``.

Each round costs ``O(log(mn))`` depth with ``mn`` processors (steps 1/3/4
are max/min reductions).  The filter step is what separates this from the
naive Θ(n)-round random-greedy: after a short prefix, *all* vertices the
committed prefix blocks leave together (on a clique the whole instance
resolves in two rounds).  The random permutation makes the expected round
count ``O(√n)`` — the shape experiment E8 measures.

Correctness: a fully-contained edge would force ``t(e) ≤ L`` (contradiction
with step 4), so ``I`` stays independent; a vertex leaves ``C`` either into
``I`` or as a witnessed-blocked discard, so when ``C`` empties, ``I`` is
maximal.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import MISResult, RoundRecord
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels.bitstore import BitEdgeStore
from repro.kernels.dispatch import select_backend
from repro.obs import metrics as obs_metrics
from repro.obs.tracer import NullTracer, Tracer, current_tracer
from repro.pram.backend import ExecutionBackend, SerialBackend
from repro.pram.machine import Machine, NullMachine
from repro.util.itlog import log2_ceil
from repro.util.rng import SeedLike, stream

__all__ = ["karp_upfal_wigderson"]


def karp_upfal_wigderson(
    H: Hypergraph,
    seed: SeedLike = None,
    *,
    machine: Machine | None = None,
    backend: ExecutionBackend | None = None,
    trace: bool = True,
    tracer: Tracer | NullTracer | None = None,
) -> MISResult:
    """Run the KUW random-permutation MIS algorithm.

    Parameters
    ----------
    H:
        Input hypergraph (any dimension — this is the general-case tool).
    seed:
        RNG seed (one child stream per round).
    machine:
        PRAM cost accountant.
    backend:
        Unused except for API symmetry (the per-round work is permutation +
        reductions, all in-process); accepted so callers can pass one
        backend everywhere.
    trace:
        Record per-round statistics.
    tracer:
        Telemetry tracer (defaults to the ambient
        :func:`~repro.obs.tracer.current_tracer`); emits ``kuw/solve``
        and ``kuw/round`` spans and stamps ``extras["wall_ns"]``.
    """
    mach = machine if machine is not None else NullMachine()
    _ = backend if backend is not None else SerialBackend()
    trc = tracer if tracer is not None else current_tracer()
    with trc.span(
        "kuw/solve", machine=mach, n=H.num_vertices, m=H.num_edges, dim=H.dimension
    ) as span:
        result = _kuw(H, seed, mach, trace, trc)
        if trc.enabled:
            span.set(rounds=result.num_rounds, mis_size=result.size)
    return result


def _kuw(
    H: Hypergraph,
    seed: SeedLike,
    mach: Machine,
    trace: bool,
    trc: Tracer | NullTracer,
) -> MISResult:
    rng_stream = stream(seed)

    universe = H.universe
    m = H.num_edges
    in_I = np.zeros(universe, dtype=bool)
    blocked = np.zeros(universe, dtype=bool)
    candidates = H.vertices.copy()
    records: list[RoundRecord] = []
    round_index = 0

    # The edge set never changes in KUW; the CSR arrays are the loop state.
    store = H.store
    indptr, indices = store.indptr, store.indices
    sizes = store.sizes()
    total = store.total_size

    # Shape dispatch: on dense-capable instances the per-round segmented
    # reductions are replaced by gathers through the padded incidence block
    # (see BitEdgeStore).  The loop — RNG draws, machine charges, records —
    # is shared, so the backends are bit-identical by construction.
    decision = select_backend(H)
    dense = BitEdgeStore.from_store(store, universe) if m and decision.dense else None

    while candidates.size:
        rng = next(rng_stream)
        c = candidates
        c_size_prefilter = int(c.size)
        record: RoundRecord | None = None
        exhausted = False

        with trc.span(
            "kuw/round", machine=mach, round=round_index, n=c_size_prefilter, m=m
        ) as rspan:
            # (1) Mass filter: drop every candidate already blocked by I — an
            # edge with all but one vertex in I blocks its missing vertex.  The
            # per-edge I-counts are one reduceat; the missing vertices are the
            # non-I positions of the nearly-complete edges (one per edge).
            blocked_now = 0
            if m:
                missing = None
                if dense is not None:
                    inI_block = dense.gather(in_I, False)
                    counts_I = inI_block.sum(axis=1)
                    nearly = counts_I == sizes - 1
                    if nearly.any():
                        sub = dense.block[nearly]
                        missing = sub[~inI_block[nearly] & (sub < universe)]
                else:
                    inI_pos = in_I[indices]
                    counts_I = np.add.reduceat(inI_pos.astype(np.intp), indptr[:-1])
                    nearly = counts_I == sizes - 1
                    if nearly.any():
                        pos = store.position_mask(nearly) & ~inI_pos
                        missing = indices[pos]
                if missing is not None:
                    in_C = np.zeros(universe, dtype=bool)
                    in_C[c] = True
                    newly = np.unique(missing[in_C[missing] & ~blocked[missing]])
                    if newly.size:
                        blocked[newly] = True
                        blocked_now = int(newly.size)
                        c = c[~blocked[c]]
                mach.charge(log2_ceil(max(H.dimension, 2)), total, total)
            if c.size == 0:
                if trace:
                    record = RoundRecord(
                        index=round_index,
                        phase="kuw",
                        n_before=c_size_prefilter,
                        m_before=m,
                        n_after=0,
                        m_after=m,
                        removed_red=blocked_now,
                        dimension=H.dimension,
                        extras={"prefix": 0},
                    )
                if trc.enabled:
                    rspan.set(n_after=0, added=0, removed_red=blocked_now)
                candidates = c
                exhausted = True
            else:
                perm = rng.permutation(c)
                # position[v] = 1-based rank of v in the permutation
                # (0 = not in C).
                position = np.zeros(universe, dtype=np.int64)
                position[perm] = np.arange(1, c.size + 1)

                # For each edge: t(e) = max position over e ∩ C, valid iff
                # every vertex of e is in I or C (otherwise e can never be
                # completed).  Vertices in I have position 0, so the per-edge
                # max-reduceat over positions is exactly the max over e ∩ C.
                L = int(c.size)  # safe prefix if unconstrained
                tightest_vertex = -1
                if m:
                    if dense is not None:
                        pos_block = dense.gather(position, 0)
                        # pad counts as "in I" so it never holds an edge open
                        open_edge = (
                            ~(dense.gather(in_I, True) | (pos_block > 0))
                        ).any(axis=1)
                        t_edge = pos_block.max(axis=1)
                    else:
                        pos_all = position[indices]
                        open_edge = (
                            np.add.reduceat(
                                (~(in_I[indices] | (pos_all > 0))).astype(np.intp),
                                indptr[:-1],
                            )
                            > 0
                        )  # a discarded vertex keeps the edge open forever
                        t_edge = np.maximum.reduceat(pos_all, indptr[:-1])
                    valid = ~open_edge
                    if (valid & (t_edge == 0)).any():
                        # e ⊆ I would violate independence; guarded by
                        # construction.
                        raise AssertionError(
                            "edge fully inside I — independence broken"
                        )
                    if valid.any():
                        t_min = int(t_edge[valid].min())
                        L = t_min - 1
                        # The permutation ranks are globally unique, so the
                        # vertex at the tightest position is edge-independent.
                        tightest_vertex = int(perm[t_min - 1])

                # PRAM charges: permutation (sort), per-edge max, global min.
                mach.sort(int(c.size))
                if total:
                    mach.charge(log2_ceil(max(H.dimension, 2)), total, total)
                mach.reduce(max(m, 1))
                mach.sync()

                committed = perm[:L]
                in_I[committed] = True
                discarded = 0
                if L < c.size:
                    if tightest_vertex < 0:
                        raise AssertionError(
                            "constrained prefix without a blocking vertex"
                        )
                    blocked[tightest_vertex] = True
                    discarded = 1
                new_candidates = c[~(in_I[c] | blocked[c])]
                obs_metrics.inc("solver/vertices_committed", int(L))

                if trace:
                    record = RoundRecord(
                        index=round_index,
                        phase="kuw",
                        n_before=c_size_prefilter,
                        m_before=m,
                        n_after=int(new_candidates.size),
                        m_after=m,
                        added=int(L),
                        removed_red=blocked_now + discarded,
                        dimension=H.dimension,
                        extras={"prefix": int(L)},
                    )
                if trc.enabled:
                    rspan.set(
                        n_after=int(new_candidates.size),
                        added=int(L),
                        removed_red=blocked_now + discarded,
                    )
                candidates = new_candidates

        if record is not None:
            if trc.enabled:
                record.extras["wall_ns"] = rspan.wall_ns
            records.append(record)
        if exhausted:
            break
        round_index += 1

    return MISResult(
        independent_set=np.flatnonzero(in_I),
        algorithm="kuw",
        n=H.num_vertices,
        m=H.num_edges,
        rounds=records,
        machine=mach.snapshot() if hasattr(mach, "snapshot") else None,
        meta={},
    )
