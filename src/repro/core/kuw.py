"""The Karp–Upfal–Wigderson (KUW) parallel MIS algorithm.

Karp, Upfal and Wigderson (JCSS 1988) gave an ``O(√n)``-round MIS algorithm
for general hypergraphs in an oracle model; the paper (§1) notes it "can be
adapted to run in time ``O(√n)·(log n + log m)`` with high probability on
``mn`` processors".  This module implements that adaptation in its standard
random-permutation form:

Each round, over the remaining candidates ``C`` (vertices neither committed
to ``I`` nor permanently blocked):

1. **filter**: discard every currently blocked candidate — a ``v ∈ C``
   such that some edge ``e ∋ v`` has ``e \\ {v} ⊆ I`` (testable for all
   candidates at once with ``mn`` processors; blocked is permanent since
   ``I`` only grows);
2. draw a uniformly random permutation ``π`` of the surviving ``C``;
3. for every edge ``e``, compute the earliest prefix of ``π`` whose union
   with ``I`` contains ``e`` — a parallel max over the positions of
   ``e ∩ C`` (valid only when ``e \\ C ⊆ I``);
4. the longest *safe* prefix length is ``L = min_e t(e) − 1`` (``|C|``
   when no edge constrains); commit the first ``L`` vertices to ``I``.

Each round costs ``O(log(mn))`` depth with ``mn`` processors (steps 1/3/4
are max/min reductions).  The filter step is what separates this from the
naive Θ(n)-round random-greedy: after a short prefix, *all* vertices the
committed prefix blocks leave together (on a clique the whole instance
resolves in two rounds).  The random permutation makes the expected round
count ``O(√n)`` — the shape experiment E8 measures.

Correctness: a fully-contained edge would force ``t(e) ≤ L`` (contradiction
with step 4), so ``I`` stays independent; a vertex leaves ``C`` either into
``I`` or as a witnessed-blocked discard, so when ``C`` empties, ``I`` is
maximal.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import MISResult, RoundRecord
from repro.hypergraph.hypergraph import Hypergraph
from repro.pram.backend import ExecutionBackend, SerialBackend
from repro.pram.machine import Machine, NullMachine
from repro.util.itlog import log2_ceil
from repro.util.rng import SeedLike, stream

__all__ = ["karp_upfal_wigderson"]


def karp_upfal_wigderson(
    H: Hypergraph,
    seed: SeedLike = None,
    *,
    machine: Machine | None = None,
    backend: ExecutionBackend | None = None,
    trace: bool = True,
) -> MISResult:
    """Run the KUW random-permutation MIS algorithm.

    Parameters
    ----------
    H:
        Input hypergraph (any dimension — this is the general-case tool).
    seed:
        RNG seed (one child stream per round).
    machine:
        PRAM cost accountant.
    backend:
        Unused except for API symmetry (the per-round work is permutation +
        reductions, all in-process); accepted so callers can pass one
        backend everywhere.
    trace:
        Record per-round statistics.
    """
    mach = machine if machine is not None else NullMachine()
    _ = backend if backend is not None else SerialBackend()
    rng_stream = stream(seed)

    universe = H.universe
    edges = H.edges
    m = len(edges)
    in_I = np.zeros(universe, dtype=bool)
    blocked = np.zeros(universe, dtype=bool)
    candidates = H.vertices.copy()
    records: list[RoundRecord] = []
    round_index = 0

    # Pre-extract edge vertex arrays once.
    edge_arrays = [np.asarray(e, dtype=np.intp) for e in edges]

    while candidates.size:
        rng = next(rng_stream)
        c = candidates
        c_size_prefilter = int(c.size)

        # (1) Mass filter: drop every candidate already blocked by I.
        blocked_now = 0
        if m:
            in_C = np.zeros(universe, dtype=bool)
            in_C[c] = True
            for ev in edge_arrays:
                inI = in_I[ev]
                if int(inI.sum()) == ev.size - 1:
                    missing = int(ev[~inI][0])
                    if in_C[missing] and not blocked[missing]:
                        blocked[missing] = True
                        blocked_now += 1
            if blocked_now:
                c = c[~blocked[c]]
            mach.charge(
                log2_ceil(max(H.dimension, 2)),
                sum(a.size for a in edge_arrays),
                sum(a.size for a in edge_arrays),
            )
        if c.size == 0:
            if trace:
                records.append(
                    RoundRecord(
                        index=round_index,
                        phase="kuw",
                        n_before=c_size_prefilter,
                        m_before=m,
                        n_after=0,
                        m_after=m,
                        removed_red=blocked_now,
                        dimension=H.dimension,
                        extras={"prefix": 0},
                    )
                )
            candidates = c
            break

        perm = rng.permutation(c)
        # position[v] = 1-based rank of v in the permutation (0 = not in C).
        position = np.zeros(universe, dtype=np.int64)
        position[perm] = np.arange(1, c.size + 1)

        # For each edge: t(e) = max position over e ∩ C, valid iff every
        # vertex of e is in I or C (otherwise e can never be completed).
        L = c.size  # safe prefix if unconstrained
        tightest_vertex = -1
        for ev in edge_arrays:
            pos = position[ev]
            outside = ~(in_I[ev] | (pos > 0))
            if outside.any():
                continue  # a discarded vertex keeps this edge open forever
            inC = pos > 0
            if not inC.any():
                # e ⊆ I would violate independence; guarded by construction.
                raise AssertionError("edge fully inside I — independence broken")
            t = int(pos[inC].max())
            if t - 1 < L:
                L = t - 1
                tightest_vertex = int(ev[pos == t][0])

        # PRAM charges: permutation (sort), per-edge max, global min.
        mach.sort(int(c.size))
        total = sum(a.size for a in edge_arrays)
        if total:
            mach.charge(log2_ceil(max(H.dimension, 2)), total, total)
        mach.reduce(max(m, 1))
        mach.sync()

        committed = perm[:L]
        in_I[committed] = True
        discarded = 0
        if L < c.size:
            if tightest_vertex < 0:
                raise AssertionError("constrained prefix without a blocking vertex")
            blocked[tightest_vertex] = True
            discarded = 1
        new_candidates = c[~(in_I[c] | blocked[c])]

        if trace:
            records.append(
                RoundRecord(
                    index=round_index,
                    phase="kuw",
                    n_before=c_size_prefilter,
                    m_before=m,
                    n_after=int(new_candidates.size),
                    m_after=m,
                    added=int(L),
                    removed_red=blocked_now + discarded,
                    dimension=H.dimension,
                    extras={"prefix": int(L)},
                )
            )
        candidates = new_candidates
        round_index += 1

    return MISResult(
        independent_set=np.flatnonzero(in_I),
        algorithm="kuw",
        n=H.num_vertices,
        m=H.num_edges,
        rounds=records,
        machine=mach.snapshot() if hasattr(mach, "snapshot") else None,
        meta={},
    )
