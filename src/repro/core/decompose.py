"""Component-parallel MIS composition.

MIS is component-local: an edge never crosses components, so the union of
per-component MISs is independent, and a vertex addable to the union would
be addable inside its own component — contradiction.  On a PRAM the
components execute side by side, so the composed depth is the **maximum**
per-component depth plus a merge scan, while the work is the sum.  This is
a straightforward but genuinely useful optimisation the paper leaves
implicit (its algorithms are stated for connected inputs).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.result import MISResult
from repro.hypergraph.components import connected_components
from repro.hypergraph.hypergraph import Hypergraph
from repro.pram.machine import CountingMachine, Machine, NullMachine
from repro.util.rng import SeedLike, spawn_seeds

__all__ = ["solve_by_components"]

#: An algorithm usable per component: ``fn(H, seed, machine=...) -> MISResult``.
ComponentAlgorithm = Callable[..., MISResult]


def solve_by_components(
    H: Hypergraph,
    algorithm: ComponentAlgorithm,
    seed: SeedLike = None,
    *,
    machine: Machine | None = None,
    trace: bool = True,
) -> MISResult:
    """Run *algorithm* independently on every connected component.

    Parameters
    ----------
    H:
        Input hypergraph.
    algorithm:
        Any of the :mod:`repro.core` algorithms (or a partial application
        fixing their options).
    seed:
        One child seed is spawned per component, so results are stable
        under any component ordering.
    machine:
        PRAM accountant for the *composed* cost: depth = max over
        components (+ a merge compact), work/processors summed.

    Returns
    -------
    MISResult
        ``algorithm`` is tagged ``"components(<inner>)"``; ``meta`` carries
        per-component summaries.
    """
    mach = machine if machine is not None else NullMachine()
    parts = connected_components(H)
    if not parts:
        return MISResult(
            independent_set=np.empty(0, dtype=np.intp),
            algorithm="components(empty)",
            n=0,
            m=0,
            machine=mach.snapshot() if hasattr(mach, "snapshot") else None,
        )
    seeds = spawn_seeds(seed, len(parts))
    members: list[int] = []
    summaries = []
    inner_name = None
    max_depth = 0
    total_work = 0
    max_procs = 0
    all_rounds = []
    for part, s in zip(parts, seeds):
        sub_machine = CountingMachine()
        res = algorithm(part, s, machine=sub_machine)
        res.verify(part)
        members.extend(res.independent_set.tolist())
        inner_name = res.algorithm
        summaries.append(res.summary())
        max_depth = max(max_depth, sub_machine.depth)
        total_work += sub_machine.work
        max_procs = max(max_procs, sub_machine.max_processors)
        if trace:
            all_rounds.extend(res.rounds)
    # Composed PRAM cost: components run concurrently.
    mach.charge(max_depth, total_work, max(max_procs, 1) * len(parts))
    mach.compact(H.num_vertices)  # merge the per-component sets
    return MISResult(
        independent_set=np.asarray(members, dtype=np.intp),
        algorithm=f"components({inner_name})",
        n=H.num_vertices,
        m=H.num_edges,
        rounds=all_rounds if trace else [],
        machine=mach.snapshot() if hasattr(mach, "snapshot") else None,
        meta={"components": len(parts), "per_component": summaries},
    )
