"""Sequential greedy MIS — the linear-time baseline.

The paper's end-game alternative ("the algorithm that takes time linear in
the number of vertices"): scan the vertices in some order and add each one
unless it would complete an edge.  With per-edge counters the total cost is
``O(n + Σ_e |e|)``.

Also the ground truth for differential tests: for a fixed order the greedy
MIS is unique, and *every* MIS algorithm's output must pass the same
:func:`~repro.hypergraph.validate.check_mis` validator.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.result import MISResult, RoundRecord
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels.dispatch import select_backend
from repro.obs import metrics as obs_metrics
from repro.obs.tracer import NullTracer, Tracer, current_tracer
from repro.pram.machine import Machine
from repro.util.rng import SeedLike, as_generator

__all__ = ["greedy_mis"]


def greedy_mis(
    H: Hypergraph,
    seed: SeedLike = None,
    *,
    order: Sequence[int] | np.ndarray | None = None,
    machine: Machine | None = None,
    trace: bool = False,
    tracer: Tracer | NullTracer | None = None,
) -> MISResult:
    """Greedy MIS along a vertex order.

    Parameters
    ----------
    H:
        Input hypergraph.
    seed:
        Used only when *order* is ``None``: the scan order is a uniformly
        random permutation of the active vertices.
    order:
        Explicit scan order (must enumerate exactly the active vertices).
    machine:
        Optional PRAM accountant.  Greedy is inherently sequential: the
        whole scan is one processor doing ``n + Σ|e|`` steps, charged as
        depth = work.
    trace:
        Record one :class:`RoundRecord` summarising the scan.
    tracer:
        Telemetry tracer (defaults to the ambient
        :func:`~repro.obs.tracer.current_tracer`); emits a single
        ``greedy/solve`` span covering the whole scan.

    Notes
    -----
    A vertex *v* is rejected iff some edge ``e ∋ v`` has all of
    ``e \\ {v}`` already accepted — detected by maintaining, per edge, the
    count of accepted vertices: *v* completes ``e`` iff
    ``accepted[e] == |e| − 1`` and the missing vertex is *v*, which, since
    counts only reflect accepted vertices and *v* is not yet accepted, is
    equivalent to ``accepted[e] == |e| − 1``.  Size-1 edges (``|e|−1 = 0``)
    correctly always reject their vertex.
    """
    active = H.vertices
    if order is None:
        # np.asarray would alias the read-only view and numpy's shuffle
        # fast path for arrays of size <= 1 operates in place, so an
        # explicit copy is required (found by `repro fuzz`, pinned by
        # tests/regressions/greedy-empty-universe.npz).
        scan = as_generator(seed).permutation(active.copy())
    else:
        scan = np.asarray(
            list(order) if not isinstance(order, np.ndarray) else order, dtype=np.intp
        )
        if not np.array_equal(np.sort(scan), active):
            raise ValueError("order must enumerate exactly the active vertices")

    trc = tracer if tracer is not None else current_tracer()
    with trc.span(
        "greedy/solve",
        machine=machine,
        n=H.num_vertices,
        m=H.num_edges,
        dim=H.dimension,
    ) as span:
        edges = H.edges
        sizes = [len(e) for e in edges]
        accepted_count = [0] * len(edges)
        in_I = np.zeros(H.universe, dtype=bool)
        added = 0

        # Shape dispatch: both adjacency layouts enumerate the same incident
        # edge sets, and the scan (order, accept/reject rule) is shared — the
        # backends are bit-identical by construction.  The dense layout is a
        # CSC-style flat index (one argsort) instead of a dict of lists.
        store = H.store
        use_dense = bool(select_backend(H).dense and store.indices.size)
        if use_dense:
            csc_order = np.argsort(store.indices, kind="stable")
            eids = np.repeat(
                np.arange(len(edges), dtype=np.intp), store.sizes()
            )[csc_order].tolist()
            aptr = np.zeros(H.universe + 1, dtype=np.intp)
            np.cumsum(
                np.bincount(store.indices, minlength=H.universe), out=aptr[1:]
            )
            aptr = aptr.tolist()
        else:
            adj = H.vertex_to_edges()

        for v in scan.tolist():
            incident = (
                eids[aptr[v] : aptr[v + 1]] if use_dense else adj.get(v, ())
            )
            completes = any(accepted_count[i] == sizes[i] - 1 for i in incident)
            if completes:
                continue
            in_I[v] = True
            added += 1
            for i in incident:
                accepted_count[i] += 1

        if machine is not None:
            cost = H.num_vertices + H.total_edge_size
            machine.charge(cost, cost, 1)
        if trc.enabled:
            span.set(mis_size=added, rejected=int(active.size) - added)
    obs_metrics.inc("solver/vertices_committed", added)

    records: list[RoundRecord] = []
    if trace:
        record = RoundRecord(
            index=0,
            phase="greedy",
            n_before=int(active.size),
            m_before=H.num_edges,
            n_after=0,
            m_after=0,
            added=added,
            removed_red=int(active.size) - added,
            dimension=H.dimension,
        )
        if trc.enabled:
            record.extras["wall_ns"] = span.wall_ns
        records.append(record)
    return MISResult(
        independent_set=np.flatnonzero(in_I),
        algorithm="greedy",
        n=H.num_vertices,
        m=H.num_edges,
        rounds=records,
        machine=machine.snapshot() if hasattr(machine, "snapshot") else None,
        meta={"order": "explicit" if order is not None else "random"},
    )
