"""Beame–Luby's permutation algorithm (paper §1).

The second algorithm of Beame and Luby (1990), "based on random
permutations which they conjectured to work in RNC for the general
problem"; Shachnai and Srinivasan (2004) made progress on its analysis.

One round, on the current hypergraph:

1. draw a uniformly random permutation ``π`` of the active vertices;
2. add to ``I`` every vertex that is **not the π-maximum of any edge** —
   i.e. ``v`` joins unless some edge ``e ∋ v`` has all other vertices
   before ``v`` in ``π`` (if such an edge exists, greedy-along-π would have
   rejected ``v``);
3. cleanup exactly as in BL: trim the added vertices out of all edges,
   discard superset edges, delete singleton edges with their vertices.

Independence of each batch: were ``e ⊆ I₀`` for the added set ``I₀``, the
π-maximum of ``e`` would be the π-max of an edge, hence excluded — a
contradiction.  Progress: the π-minimum vertex of the hypergraph is never
the π-max of an edge of size ≥ 2 (and a size-1 edge deletes its vertex in
cleanup), so every round colours at least one vertex.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import MISResult, RoundRecord
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.ops import normalize, trim_vertices
from repro.pram.machine import Machine, NullMachine
from repro.util.itlog import log2_ceil
from repro.util.rng import SeedLike, stream

__all__ = ["permutation_bl"]

DEFAULT_MAX_ROUNDS = 100_000


def permutation_bl(
    H: Hypergraph,
    seed: SeedLike = None,
    *,
    machine: Machine | None = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    trace: bool = True,
) -> MISResult:
    """Run the permutation algorithm to completion.

    Parameters
    ----------
    H:
        Input hypergraph.
    seed:
        RNG seed (one child stream per round).
    machine:
        PRAM cost accountant; a round costs a sort (the permutation) plus
        per-edge max-reductions.
    max_rounds:
        Abort guard.
    trace:
        Record per-round statistics.
    """
    mach = machine if machine is not None else NullMachine()
    rng_stream = stream(seed)
    W = H
    independent: list[int] = []
    records: list[RoundRecord] = []

    for round_index in range(max_rounds):
        if W.num_vertices == 0:
            break
        if W.num_edges == 0:
            independent.extend(W.vertices.tolist())
            mach.map(W.num_vertices)
            if trace:
                records.append(
                    RoundRecord(
                        index=round_index,
                        phase="permutation",
                        n_before=W.num_vertices,
                        m_before=0,
                        n_after=0,
                        m_after=0,
                        added=W.num_vertices,
                        dimension=0,
                    )
                )
            break

        n_before, m_before = W.num_vertices, W.num_edges
        d_before = W.dimension
        rng = next(rng_stream)
        active = W.vertices
        perm = rng.permutation(active)
        rank = np.zeros(W.universe, dtype=np.int64)
        rank[perm] = np.arange(1, active.size + 1)

        # A vertex is excluded iff it is the π-max of some edge.  Ranks are
        # globally unique, so within an edge exactly one position attains
        # the edge's max-reduceat value.
        excluded = np.zeros(W.universe, dtype=bool)
        store = W.store
        rank_pos = rank[store.indices]
        edge_max = np.maximum.reduceat(rank_pos, store.indptr[:-1])
        excluded[store.indices[rank_pos == np.repeat(edge_max, W.edge_sizes())]] = True
        add_mask = np.zeros(W.universe, dtype=bool)
        add_mask[active] = True
        add_mask &= ~excluded
        added = np.flatnonzero(add_mask)

        total = W.total_edge_size
        mach.sort(int(active.size))
        if total:
            mach.charge(log2_ceil(max(d_before, 2)), total, total)
        mach.map(n_before)
        mach.sync()

        W_after = W
        if added.size:
            independent.extend(added.tolist())
            W_after = trim_vertices(W_after, added)
        W_after, red = normalize(W_after)

        if trace:
            records.append(
                RoundRecord(
                    index=round_index,
                    phase="permutation",
                    n_before=n_before,
                    m_before=m_before,
                    n_after=W_after.num_vertices,
                    m_after=W_after.num_edges,
                    added=int(added.size),
                    removed_red=int(red.size),
                    dimension=d_before,
                )
            )
        W = W_after
    else:
        raise RuntimeError(
            f"permutation algorithm failed to terminate within {max_rounds} rounds"
        )

    return MISResult(
        independent_set=np.asarray(independent, dtype=np.intp),
        algorithm="permutation",
        n=H.num_vertices,
        m=H.num_edges,
        rounds=records,
        machine=mach.snapshot() if hasattr(mach, "snapshot") else None,
        meta={},
    )
