"""Beame–Luby's permutation algorithm (paper §1).

The second algorithm of Beame and Luby (1990), "based on random
permutations which they conjectured to work in RNC for the general
problem"; Shachnai and Srinivasan (2004) made progress on its analysis.

One round, on the current hypergraph:

1. draw a uniformly random permutation ``π`` of the active vertices;
2. add to ``I`` every vertex that is **not the π-maximum of any edge** —
   i.e. ``v`` joins unless some edge ``e ∋ v`` has all other vertices
   before ``v`` in ``π`` (if such an edge exists, greedy-along-π would have
   rejected ``v``);
3. cleanup exactly as in BL: trim the added vertices out of all edges,
   discard superset edges, delete singleton edges with their vertices.

Independence of each batch: were ``e ⊆ I₀`` for the added set ``I₀``, the
π-maximum of ``e`` would be the π-max of an edge, hence excluded — a
contradiction.  Progress: the π-minimum vertex of the hypergraph is never
the π-max of an edge of size ≥ 2 (and a size-1 edge deletes its vertex in
cleanup), so every round colours at least one vertex.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import MISResult, RoundRecord
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.ops import normalize, trim_vertices
from repro.kernels.bitstore import BitEdgeStore
from repro.kernels.dispatch import select_backend
from repro.obs import metrics as obs_metrics
from repro.obs.tracer import NullTracer, Tracer, current_tracer
from repro.pram.machine import Machine, NullMachine
from repro.util.itlog import log2_ceil
from repro.util.rng import SeedLike, stream

__all__ = ["permutation_bl"]

DEFAULT_MAX_ROUNDS = 100_000


def permutation_bl(
    H: Hypergraph,
    seed: SeedLike = None,
    *,
    machine: Machine | None = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    trace: bool = True,
    tracer: Tracer | NullTracer | None = None,
) -> MISResult:
    """Run the permutation algorithm to completion.

    Parameters
    ----------
    H:
        Input hypergraph.
    seed:
        RNG seed (one child stream per round).
    machine:
        PRAM cost accountant; a round costs a sort (the permutation) plus
        per-edge max-reductions.
    max_rounds:
        Abort guard.
    trace:
        Record per-round statistics.
    tracer:
        Telemetry tracer (defaults to the ambient
        :func:`~repro.obs.tracer.current_tracer`); emits
        ``permutation/solve`` and ``permutation/round`` spans and stamps
        ``extras["wall_ns"]``.
    """
    mach = machine if machine is not None else NullMachine()
    trc = tracer if tracer is not None else current_tracer()
    with trc.span(
        "permutation/solve",
        machine=mach,
        n=H.num_vertices,
        m=H.num_edges,
        dim=H.dimension,
    ) as span:
        result = _permutation_bl(H, seed, mach, max_rounds, trace, trc)
        if trc.enabled:
            span.set(rounds=result.num_rounds, mis_size=result.size)
    return result


def _permutation_bl(
    H: Hypergraph,
    seed: SeedLike,
    mach: Machine,
    max_rounds: int,
    trace: bool,
    trc: Tracer | NullTracer,
) -> MISResult:
    rng_stream = stream(seed)
    W = H
    independent: list[int] = []
    records: list[RoundRecord] = []

    # Shape dispatch, decided once per solve (the universe never grows and
    # the dimension never increases across rounds).  On dense instances the
    # π-max detection runs over the padded incidence block; everything else
    # — RNG, machine charges, cleanup, records — is shared, so the backends
    # are bit-identical by construction.
    use_dense = select_backend(H).dense

    for round_index in range(max_rounds):
        if W.num_vertices == 0:
            break
        if W.num_edges == 0:
            n_left = W.num_vertices
            with trc.span(
                "permutation/round", machine=mach, round=round_index, n=n_left, m=0
            ) as rspan:
                independent.extend(W.vertices.tolist())
                mach.map(n_left)
                if trc.enabled:
                    rspan.set(n_after=0, m_after=0, added=n_left)
            obs_metrics.inc("solver/vertices_committed", n_left)
            if trace:
                record = RoundRecord(
                    index=round_index,
                    phase="permutation",
                    n_before=n_left,
                    m_before=0,
                    n_after=0,
                    m_after=0,
                    added=n_left,
                    dimension=0,
                )
                if trc.enabled:
                    record.extras["wall_ns"] = rspan.wall_ns
                records.append(record)
            break

        n_before, m_before = W.num_vertices, W.num_edges
        d_before = W.dimension
        with trc.span(
            "permutation/round",
            machine=mach,
            round=round_index,
            n=n_before,
            m=m_before,
            dim=d_before,
        ) as rspan:
            rng = next(rng_stream)
            active = W.vertices
            perm = rng.permutation(active)
            rank = np.zeros(W.universe, dtype=np.int64)
            rank[perm] = np.arange(1, active.size + 1)

            # A vertex is excluded iff it is the π-max of some edge.  Ranks
            # are globally unique, so within an edge exactly one position
            # attains the edge's max-reduceat value.
            excluded = np.zeros(W.universe, dtype=bool)
            store = W.store
            if use_dense:
                dense = BitEdgeStore.from_store(store, W.universe)
                rank_block = dense.gather(rank, 0)
                edge_max = rank_block.max(axis=1)
                at_max = (rank_block == edge_max[:, None]) & (
                    dense.block < W.universe
                )
                excluded[dense.block[at_max]] = True
            else:
                rank_pos = rank[store.indices]
                edge_max = np.maximum.reduceat(rank_pos, store.indptr[:-1])
                excluded[
                    store.indices[rank_pos == np.repeat(edge_max, W.edge_sizes())]
                ] = True
            add_mask = np.zeros(W.universe, dtype=bool)
            add_mask[active] = True
            add_mask &= ~excluded
            added = np.flatnonzero(add_mask)

            total = W.total_edge_size
            mach.sort(int(active.size))
            if total:
                mach.charge(log2_ceil(max(d_before, 2)), total, total)
            mach.map(n_before)
            mach.sync()

            W_after = W
            if added.size:
                independent.extend(added.tolist())
                W_after = trim_vertices(W_after, added)
            W_after, red = normalize(W_after)
            if trc.enabled:
                rspan.set(
                    n_after=W_after.num_vertices,
                    m_after=W_after.num_edges,
                    added=int(added.size),
                )
        obs_metrics.inc("solver/vertices_committed", int(added.size))

        if trace:
            record = RoundRecord(
                index=round_index,
                phase="permutation",
                n_before=n_before,
                m_before=m_before,
                n_after=W_after.num_vertices,
                m_after=W_after.num_edges,
                added=int(added.size),
                removed_red=int(red.size),
                dimension=d_before,
            )
            if trc.enabled:
                record.extras["wall_ns"] = rspan.wall_ns
            records.append(record)
        W = W_after
    else:
        raise RuntimeError(
            f"permutation algorithm failed to terminate within {max_rounds} rounds"
        )

    return MISResult(
        independent_set=np.asarray(independent, dtype=np.intp),
        algorithm="permutation",
        n=H.num_vertices,
        m=H.num_edges,
        rounds=records,
        machine=mach.snapshot() if hasattr(mach, "snapshot") else None,
        meta={},
    )
