"""The independence-oracle model of Karp–Upfal–Wigderson.

The paper (§1) notes that KUW's algorithm "actually works in a harder
model of computation where the hypergraph is accessible only via an
oracle".  This module builds that model:

* :class:`IndependenceOracle` — the only interface to the hypergraph: a
  query takes a vertex set and answers "independent or not".  Queries are
  counted, and batched queries model one parallel oracle round (many
  processors querying simultaneously).
* :func:`kuw_oracle` — KUW driven purely through the oracle: each round
  issues one batch to filter blocked candidates (``I ∪ {v}`` for every
  candidate) and one batch over permutation prefixes (``I ∪ P_k`` for
  every k; independence is monotone in k, so the largest safe prefix is
  read off the batch).  The hypergraph structure (edges, degrees) is
  never touched — the wrapper would raise if it were.

This measures what the round/query complexity costs *without* structural
access: ``O(|C|)`` queries per round in two parallel batches, against the
same ``O(√n)``-round behaviour.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.result import MISResult, RoundRecord
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.validate import is_independent
from repro.util.rng import SeedLike, stream

__all__ = ["IndependenceOracle", "kuw_oracle", "oracle_certify_mis"]


class IndependenceOracle:
    """Query-counting independence oracle over a hidden hypergraph.

    Attributes
    ----------
    universe:
        Size of the hidden ground set (the only structural fact exposed).
    queries:
        Total independence queries answered.
    batches:
        Number of parallel query rounds (one batch = one oracle round).
    """

    def __init__(self, H: Hypergraph):
        self._H = H
        self.universe = H.universe
        self.vertices = H.vertices.copy()  # candidate ground set is public
        self.queries = 0
        self.batches = 0

    def query(self, members: Iterable[int] | np.ndarray) -> bool:
        """One independence query (counts as its own batch)."""
        self.queries += 1
        self.batches += 1
        return is_independent(self._H, members)

    def query_batch(self, sets: Sequence[np.ndarray]) -> list[bool]:
        """Answer many queries as one parallel oracle round."""
        self.queries += len(sets)
        self.batches += 1
        return [is_independent(self._H, s) for s in sets]


def oracle_certify_mis(
    H: Hypergraph, members: Iterable[int] | np.ndarray
) -> dict:
    """Certify *members* as an MIS using independence queries only.

    The structural validator (:func:`repro.hypergraph.validate.check_mis`)
    reads edges directly; this certifier goes through the
    :class:`IndependenceOracle` instead, so the two answer the same
    question along entirely different code paths — which is exactly what
    the differential harness in :mod:`repro.qa` wants.  Independence is
    one query (``I`` itself); maximality is one parallel batch
    (``I ∪ {v}`` for every active outsider ``v``, all of which must come
    back dependent).

    Returns
    -------
    dict
        ``independent`` / ``maximal`` booleans, the ``addable`` witness
        vertices (empty when maximal), and the ``queries`` / ``batches``
        the certification spent.
    """
    oracle = IndependenceOracle(H)
    I = np.asarray(sorted({int(v) for v in members}), dtype=np.intp)
    independent = oracle.query(I)
    outside = np.setdiff1d(oracle.vertices, I)
    addable: list[int] = []
    if independent and outside.size:
        answers = oracle.query_batch([np.append(I, v) for v in outside.tolist()])
        addable = [int(v) for v, ok in zip(outside.tolist(), answers) if ok]
    return {
        "independent": bool(independent),
        "maximal": bool(independent) and not addable,
        "addable": addable,
        "queries": oracle.queries,
        "batches": oracle.batches,
    }


def kuw_oracle(
    oracle: IndependenceOracle,
    seed: SeedLike = None,
    *,
    trace: bool = True,
) -> MISResult:
    """KUW through the oracle only: filter batch + prefix batch per round.

    Parameters
    ----------
    oracle:
        The only access to the hypergraph.
    seed:
        RNG seed (one child stream per round).

    Returns
    -------
    MISResult
        ``algorithm="kuw-oracle"``; ``meta`` records total queries and
        oracle batches.
    """
    rng_stream = stream(seed)
    universe = oracle.universe
    in_I = np.zeros(universe, dtype=bool)
    candidates = oracle.vertices.copy()
    records: list[RoundRecord] = []
    round_index = 0

    while candidates.size:
        rng = next(rng_stream)
        I_now = np.flatnonzero(in_I)

        # Batch 1: filter permanently blocked candidates.
        singles = [np.append(I_now, v) for v in candidates.tolist()]
        answers = oracle.query_batch(singles)
        c = candidates[np.asarray(answers, dtype=bool)]
        blocked_now = int(candidates.size - c.size)
        if c.size == 0:
            if trace:
                records.append(
                    RoundRecord(
                        index=round_index, phase="kuw-oracle",
                        n_before=int(candidates.size), m_before=-1,
                        n_after=0, m_after=-1, removed_red=blocked_now,
                        extras={"queries": len(singles)},
                    )
                )
            candidates = c
            break

        # Batch 2: prefix queries along a random permutation.  A prefix is
        # safe iff I ∪ P_k is independent; safety is monotone decreasing
        # in k, so the largest safe k is the count of true answers up to
        # the first false.
        perm = rng.permutation(c)
        prefixes = [np.concatenate([I_now, perm[:k]]) for k in range(1, c.size + 1)]
        answers = oracle.query_batch(prefixes)
        L = 0
        for ok in answers:
            if not ok:
                break
            L += 1
        in_I[perm[:L]] = True
        new_candidates = perm[L:] if L < c.size else np.empty(0, dtype=c.dtype)
        # perm[:L] committed; perm[L] (if any) is blocked *now* but will be
        # caught by the next round's filter batch; keep it as a candidate.
        if trace:
            records.append(
                RoundRecord(
                    index=round_index, phase="kuw-oracle",
                    n_before=int(candidates.size), m_before=-1,
                    n_after=int(new_candidates.size), m_after=-1,
                    added=int(L), removed_red=blocked_now,
                    extras={"queries": len(singles) + len(prefixes)},
                )
            )
        candidates = new_candidates
        round_index += 1

    return MISResult(
        independent_set=np.flatnonzero(in_I),
        algorithm="kuw-oracle",
        n=int(oracle.vertices.size),
        m=-1,
        rounds=records,
        machine=None,
        meta={"queries": oracle.queries, "oracle_batches": oracle.batches},
    )
