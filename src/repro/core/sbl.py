"""The SBL (sampling Beame–Luby) algorithm — the paper's contribution
(Algorithm 1, Theorem 1).

Each outer round on the current hypergraph ``H``:

1. sample ``V′ ⊆ V`` by independent marking with probability
   ``p = n^{−1/log⁽³⁾n}``;
2. let ``H′ = (V′, E′)`` with ``E′ = {e ∈ E : e ⊆ V′}``; if
   ``dim(H′) > d = log⁽²⁾n/(4 log⁽³⁾n)`` the round **fails** (the paper
   restarts; we resample, counting failures — event B's probability is
   bounded by ``r·m·p^{d+1}``);
3. run BL on ``H′``; its MIS ``I′`` is colored blue, ``V′ \\ I′`` red —
   permanently;
4. commit: ``I ← I ∪ I′``; drop every edge containing a red vertex (it can
   never be fully blue); trim blue vertices out of the remaining edges;
   ``V ← V \\ V′``;
5. repeat while ``|V| ≥ 1/p²``; finish with KUW (or, below a size floor,
   the sequential greedy the paper calls "the algorithm that takes time
   linear in the number of vertices").

Correctness (paper §2.1) is independent of the parameter choices, so the
implementation stays correct even at small n where we must clamp the
asymptotic formulas (``effective_p``, ``effective_d`` — see
:mod:`repro.theory.parameters`).
"""

from __future__ import annotations

import numpy as np

from repro.core.bl import beame_luby
from repro.core.greedy import greedy_mis
from repro.core.kuw import karp_upfal_wigderson
from repro.core.result import MISResult, RoundRecord
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.ops import remove_edges_touching, trim_vertices
from repro.obs import metrics as obs_metrics
from repro.obs.tracer import NullTracer, Tracer, current_tracer
from repro.pram.backend import ExecutionBackend, SerialBackend
from repro.pram.machine import Machine, NullMachine
from repro.theory.parameters import SBLParameters, sbl_parameters
from repro.util.rng import SeedLike, stream

__all__ = ["sbl", "SBLFailure"]


class SBLFailure(RuntimeError):
    """Raised when a round keeps sampling an over-dimension sub-hypergraph.

    Event B of the analysis; its probability per attempt is
    ``≤ m·p^{d+1}``, so hitting the retry cap signals parameters far
    outside the theorem's regime rather than bad luck.
    """


def sbl(
    H: Hypergraph,
    seed: SeedLike = None,
    *,
    machine: Machine | None = None,
    backend: ExecutionBackend | None = None,
    params: SBLParameters | None = None,
    p_override: float | None = None,
    d_cap_override: int | None = None,
    floor_override: int | None = None,
    max_failures_per_round: int = 50,
    finisher: str = "kuw",
    paranoid: bool = False,
    trace: bool = True,
    tracer: Tracer | NullTracer | None = None,
) -> MISResult:
    """Run SBL to completion.

    Parameters
    ----------
    H:
        Input hypergraph.  Theorem 1 assumes ``m ≤ n^β``; the
        implementation works on any input but the round/depth guarantees
        only apply in that regime (``meta["m_bound_ok"]`` records it).
    seed:
        RNG seed; outer round *i* and its BL invocation draw from
        independent child streams.
    machine:
        PRAM cost accountant shared across all phases.
    backend:
        Bulk-step execution backend.
    params:
        Pre-computed :class:`SBLParameters` (defaults to the §2.2 formulas
        for ``n = |V|`` with practical clamps).
    p_override, d_cap_override, floor_override:
        Direct overrides of the sampling probability, the dimension cap of
        the BL calls, and the while-loop exit threshold.  The §2.2 formulas
        are deeply asymptotic (at every feasible n the raw ``1/p²`` floor
        exceeds n itself), so experiments probing the *shape* of Theorem 1
        sweep these explicitly; correctness (§2.1) holds for any values.
    max_failures_per_round:
        Resampling budget for event-B failures before raising
        :class:`SBLFailure`.
    finisher:
        ``"kuw"`` (paper's choice) or ``"greedy"`` (the linear-time
        alternative the paper mentions) for the end-game.
    paranoid:
        Verify the §2.1 invariant at runtime: every inner result is
        checked to be an MIS of the hypergraph it was computed on before
        being committed.  Costs one validator pass per round; use in
        long unattended campaigns or when plugging in external inner
        solvers.
    trace:
        Record the per-round trace.
    tracer:
        Telemetry tracer (defaults to the ambient
        :func:`~repro.obs.tracer.current_tracer`).  An enabled tracer
        emits nested ``sbl/solve → sbl/outer_round →
        {sbl/sample, bl/solve, sbl/commit}`` spans plus the finisher's
        spans, and stamps ``extras["wall_ns"]`` on every outer-round
        record.

    Returns
    -------
    MISResult
        ``algorithm="sbl"``; the trace interleaves phases ``"sbl"`` (outer
        rounds), ``"bl"`` (inner rounds) and the finisher's phase.
    """
    if finisher not in ("kuw", "greedy"):
        raise ValueError(f"unknown finisher: {finisher!r}")
    mach = machine if machine is not None else NullMachine()
    be = backend if backend is not None else SerialBackend()
    prm = params if params is not None else sbl_parameters(max(H.num_vertices, 2))
    p = p_override if p_override is not None else prm.effective_p
    if not 0.0 < p <= 1.0:
        raise ValueError(f"sampling probability out of range: {p}")
    d_cap = d_cap_override if d_cap_override is not None else prm.effective_d
    floor = floor_override if floor_override is not None else prm.effective_vertex_floor
    if d_cap < 1:
        raise ValueError(f"dimension cap must be >= 1: {d_cap}")
    trc = tracer if tracer is not None else current_tracer()
    with trc.span(
        "sbl/solve", machine=mach, n=H.num_vertices, m=H.num_edges, dim=H.dimension
    ) as span:
        result = _sbl(
            H, seed, mach, be, backend, prm, p, d_cap, floor,
            max_failures_per_round, finisher, paranoid, trace, trc,
        )
        if trc.enabled:
            span.set(
                rounds=result.num_rounds,
                outer_rounds=result.meta.get("outer_rounds", 0),
                mis_size=result.size,
            )
    return result


def _sbl(
    H: Hypergraph,
    seed: SeedLike,
    mach: Machine,
    be: ExecutionBackend,
    backend: ExecutionBackend | None,
    prm: SBLParameters,
    p: float,
    d_cap: int,
    floor: float,
    max_failures_per_round: int,
    finisher: str,
    paranoid: bool,
    trace: bool,
    trc: Tracer | NullTracer,
) -> MISResult:
    rng_stream = stream(seed)

    records: list[RoundRecord] = []
    independent: list[int] = []
    failures_total = 0
    W = H

    # Algorithm 1 line 3: if the input dimension is already within the BL
    # cap, a single BL run suffices (lines 25–27).
    if W.dimension <= d_cap:
        # Pass the *caller's* backend (None for the default): a non-None
        # backend pins the inner BL to CSR, so handing every inner solve a
        # fabricated SerialBackend used to block the dense engines on
        # exactly the reduced shapes they win on.
        inner = beame_luby(
            W, next(rng_stream), machine=mach, backend=backend, trace=trace,
            tracer=trc,
        )
        meta = {
            "params": prm,
            "direct_bl": True,
            "failures": 0,
            "m_bound_ok": H.num_edges <= prm.m_max,
        }
        return MISResult(
            independent_set=inner.independent_set,
            algorithm="sbl",
            n=H.num_vertices,
            m=H.num_edges,
            rounds=inner.rounds if trace else [],
            machine=mach.snapshot() if hasattr(mach, "snapshot") else None,
            meta=meta,
        )

    outer_index = 0
    while W.num_vertices >= floor and W.num_edges > 0:
        n_before, m_before = W.num_vertices, W.num_edges
        d_before = W.dimension

        with trc.span(
            "sbl/outer_round",
            machine=mach,
            round=outer_index,
            n=n_before,
            m=m_before,
            dim=d_before,
        ) as ospan:
            # (1)+(2): sample until the induced sub-hypergraph fits the cap.
            with trc.span("sbl/sample", machine=mach, round=outer_index) as sspan:
                failures_this_round = 0
                while True:
                    active = W.vertices
                    coin = be.bernoulli(next(rng_stream), int(active.size), p)
                    mach.map(n_before)  # one coin per active vertex
                    sampled = active[coin]
                    if sampled.size == 0:
                        # Vacuous sample; cheap retry (counts as a failure for
                        # the budget — an empty V' makes no progress).
                        failures_this_round += 1
                    else:
                        Hp = W.induced(sampled)
                        mach.charge(1, W.total_edge_size, W.total_edge_size)
                        if Hp.dimension <= d_cap:
                            break
                        failures_this_round += 1
                    if failures_this_round > max_failures_per_round:
                        raise SBLFailure(
                            f"round {outer_index}: exceeded {max_failures_per_round} "
                            f"sampling failures (p={p:.4g}, d_cap={d_cap})"
                        )
                if trc.enabled:
                    sspan.set(
                        sampled=int(sampled.size),
                        sampled_dim=Hp.dimension,
                        failures=failures_this_round,
                    )
            failures_total += failures_this_round
            obs_metrics.inc("solver/sampling_failures", failures_this_round)

            # (3): BL on the sampled sub-hypergraph — routed through
            # select_backend like any solve: after dimension reduction these
            # are exactly the small shapes the dense engines cover.
            inner = beame_luby(
                Hp, next(rng_stream), machine=mach, backend=backend, trace=trace,
                tracer=trc,
            )
            if paranoid:
                inner.verify(Hp)
            blue = inner.independent_set
            blue_mask = np.zeros(W.universe, dtype=bool)
            blue_mask[blue] = True
            red = sampled[~blue_mask[sampled]]

            # (4): commit the colouring.
            with trc.span("sbl/commit", machine=mach, round=outer_index) as cspan:
                independent.extend(blue.tolist())
                W2 = remove_edges_touching(W, red)
                # Trim blue vertices out of surviving edges, then drop all of
                # V'.  trim_vertices also removes the trimmed vertices from
                # the active set; red vertices must go too.
                W2 = trim_vertices(W2, blue)
                remaining = np.setdiff1d(W2.vertices, red, assume_unique=False)
                W2 = W2.replace(vertices=remaining)
                mach.map(W.total_edge_size)
                mach.sync()
                if trc.enabled:
                    cspan.set(added=int(blue.size), red=int(red.size))
            obs_metrics.inc("solver/vertices_committed", int(blue.size))
            if trc.enabled:
                ospan.set(n_after=W2.num_vertices, m_after=W2.num_edges)

        if trace:
            record = RoundRecord(
                index=outer_index,
                phase="sbl",
                n_before=n_before,
                m_before=m_before,
                n_after=W2.num_vertices,
                m_after=W2.num_edges,
                marked=int(sampled.size),
                added=int(blue.size),
                removed_red=int(red.size),
                dimension=d_before,
                extras={
                    "p": p,
                    "failures": failures_this_round,
                    "sampled_dim": Hp.dimension,
                    "bl_rounds": inner.num_rounds,
                },
            )
            if trc.enabled:
                record.extras["wall_ns"] = ospan.wall_ns
            records.append(record)
            records.extend(inner.rounds)
        W = W2
        outer_index += 1

    # (5): end-game on the small remainder.
    if W.num_vertices > 0:
        with trc.span(
            "sbl/finisher",
            machine=mach,
            finisher=finisher if W.num_edges else "edgeless",
            n=W.num_vertices,
            m=W.num_edges,
        ):
            if W.num_edges == 0:
                independent.extend(W.vertices.tolist())
                mach.map(W.num_vertices)
                obs_metrics.inc("solver/vertices_committed", W.num_vertices)
            elif finisher == "kuw":
                tail = karp_upfal_wigderson(
                    W, next(rng_stream), machine=mach, backend=backend, trace=trace,
                    tracer=trc,
                )
                if paranoid:
                    tail.verify(W)
                independent.extend(tail.independent_set.tolist())
                if trace:
                    records.extend(tail.rounds)
            else:
                tail = greedy_mis(W, next(rng_stream), tracer=trc)
                independent.extend(tail.independent_set.tolist())
                # Sequential fallback: worst case linear in the vertex count.
                mach.charge(W.num_vertices, W.total_edge_size + W.num_vertices, 1)
                if trace:
                    records.extend(tail.rounds)

    return MISResult(
        independent_set=np.asarray(independent, dtype=np.intp),
        algorithm="sbl",
        n=H.num_vertices,
        m=H.num_edges,
        rounds=records,
        machine=mach.snapshot() if hasattr(mach, "snapshot") else None,
        meta={
            "params": prm,
            "direct_bl": False,
            "failures": failures_total,
            "outer_rounds": outer_index,
            "m_bound_ok": H.num_edges <= prm.m_max,
            "finisher": finisher,
        },
    )
