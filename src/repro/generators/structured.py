"""Deterministic structured hypergraph families.

Small, exactly analysable instances used by the unit tests (known MIS
sizes, known degree structures) and by the adversarial probes of the
experiments (sunflowers maximise the edge-migration effect Kelsen's
analysis fights; matchings are the easiest case; stars stress singleton
cleanup).
"""

from __future__ import annotations

from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "sunflower",
    "matching_hypergraph",
    "star_hypergraph",
    "complete_uniform",
    "tight_path",
    "tight_cycle",
]


def sunflower(core_size: int, petals: int, petal_size: int) -> Hypergraph:
    """A sunflower: *petals* edges sharing a common core of *core_size* vertices.

    Edge i is ``core ∪ petal_i`` with pairwise disjoint petals of size
    *petal_size*.  Sunflowers maximise ``N_j(core, H)`` and are the
    canonical stressor for the degree-migration analysis: once the core is
    nearly blue, every petal is one step from becoming a low-dimension
    edge.

    Vertices ``0 … core_size−1`` form the core.
    """
    if core_size < 1 or petals < 1 or petal_size < 1:
        raise ValueError("core_size, petals and petal_size must be positive")
    n = core_size + petals * petal_size
    core = tuple(range(core_size))
    edges = []
    for i in range(petals):
        start = core_size + i * petal_size
        edges.append(core + tuple(range(start, start + petal_size)))
    return Hypergraph(n, edges)


def matching_hypergraph(blocks: int, block_size: int) -> Hypergraph:
    """*blocks* pairwise disjoint edges of size *block_size*.

    The easiest instance: every MIS leaves exactly one vertex out of each
    block, so the MIS size is exactly ``n − blocks`` (for block_size ≥ 2).
    """
    if blocks < 0 or block_size < 1:
        raise ValueError("blocks must be >= 0 and block_size >= 1")
    n = blocks * block_size
    edges = [
        tuple(range(i * block_size, (i + 1) * block_size)) for i in range(blocks)
    ]
    return Hypergraph(n, edges)


def star_hypergraph(leaves: int, edge_size: int = 2) -> Hypergraph:
    """Vertex 0 in every edge; each edge picks ``edge_size − 1`` fresh leaves.

    For ``edge_size = 2`` this is the star graph: the MIS is either
    ``{0}``-free (all leaves) or just ``{0}``.
    """
    if leaves < 1 or edge_size < 2:
        raise ValueError("need leaves >= 1 and edge_size >= 2")
    per_edge = edge_size - 1
    n = 1 + leaves * per_edge
    edges = []
    for i in range(leaves):
        start = 1 + i * per_edge
        edges.append((0,) + tuple(range(start, start + per_edge)))
    return Hypergraph(n, edges)


def complete_uniform(n: int, d: int) -> Hypergraph:
    """All ``C(n, d)`` edges of size d — every d-subset is forbidden.

    Any MIS has exactly ``d − 1`` vertices.
    """
    import itertools

    if d < 1 or d > n:
        raise ValueError(f"need 1 <= d <= n: d={d}, n={n}")
    return Hypergraph(n, itertools.combinations(range(n), d))


def tight_path(n: int, d: int) -> Hypergraph:
    """The tight path: edges ``{i, …, i+d−1}`` for ``0 ≤ i ≤ n−d``.

    Linear-structure instance with overlapping consecutive edges; maximum
    degree d, and a known greedy MIS structure (periodic gaps).
    """
    if d < 2 or d > n:
        raise ValueError(f"need 2 <= d <= n: d={d}, n={n}")
    return Hypergraph(n, [tuple(range(i, i + d)) for i in range(n - d + 1)])


def tight_cycle(n: int, d: int) -> Hypergraph:
    """The tight cycle: edges ``{i, …, i+d−1 mod n}`` for each i."""
    if d < 2 or d >= n:
        raise ValueError(f"need 2 <= d < n: d={d}, n={n}")
    return Hypergraph(
        n, [tuple(sorted((i + k) % n for k in range(d))) for i in range(n)]
    )
