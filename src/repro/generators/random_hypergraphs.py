"""Random hypergraph families.

All generators take a ``seed`` (anything :func:`repro.util.rng.as_generator`
accepts) and return a canonical :class:`~repro.hypergraph.Hypergraph` over
the universe ``{0, …, n−1}``.  Edge sampling is rejection-free where easy
and rejection-based with a retry cap otherwise; generators raise rather
than silently return fewer edges than requested when the request is
infeasible (e.g. more distinct d-sets than exist).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.theory.parameters import sbl_parameters
from repro.util.rng import SeedLike, as_generator

__all__ = [
    "uniform_hypergraph",
    "mixed_dimension_hypergraph",
    "bounded_edges_instance",
    "sparse_random_graph",
]

_MAX_REJECTION_ROUNDS = 64


def _distinct_random_sets(
    rng: np.random.Generator, n: int, m: int, size: int
) -> list[tuple[int, ...]]:
    """Draw m distinct sorted *size*-subsets of {0..n-1} uniformly-ish.

    Batch sampling with rejection of duplicates; raises if the space is too
    small to hold m distinct sets.
    """
    if size > n:
        raise ValueError(f"edge size {size} exceeds vertex count {n}")
    space = math.comb(n, size)
    if m > space:
        raise ValueError(f"requested {m} distinct {size}-sets but only {space} exist")
    seen: set[tuple[int, ...]] = set()
    rounds = 0
    while len(seen) < m:
        rounds += 1
        if rounds > _MAX_REJECTION_ROUNDS:
            raise RuntimeError(
                f"rejection sampling stalled: {len(seen)}/{m} distinct {size}-sets"
            )
        need = m - len(seen)
        batch = max(need + 8, int(need * 1.2))
        if size == 1:
            draws = rng.integers(0, n, size=(batch, 1))
        elif size <= n // 4:
            # Vectorised path: sample rows with replacement and drop rows
            # with repeated vertices (rare when size ≪ n).
            draws = rng.integers(0, n, size=(batch, size))
            draws.sort(axis=1)
            ok = (np.diff(draws, axis=1) != 0).all(axis=1)
            draws = draws[ok]
        else:
            # Dense regime: per-row sampling without replacement.
            draws = np.empty((batch, size), dtype=np.int64)
            for row in range(batch):
                draws[row] = rng.choice(n, size=size, replace=False)
        draws.sort(axis=1)
        for row in draws:
            t = tuple(int(x) for x in row)
            seen.add(t)
            if len(seen) == m:
                break
    return sorted(seen)


def uniform_hypergraph(n: int, m: int, d: int, seed: SeedLike = None) -> Hypergraph:
    """A d-uniform hypergraph with m distinct uniformly random edges.

    Parameters
    ----------
    n, m, d:
        Vertices, edges, (exact) edge size.
    seed:
        RNG seed.

    Examples
    --------
    >>> H = uniform_hypergraph(20, 10, 3, seed=0)
    >>> H.num_edges, H.dimension
    (10, 3)
    """
    if n < 1:
        raise ValueError(f"need n >= 1: {n}")
    if m < 0:
        raise ValueError(f"need m >= 0: {m}")
    if d < 1:
        raise ValueError(f"need d >= 1: {d}")
    rng = as_generator(seed)
    return Hypergraph(n, _distinct_random_sets(rng, n, m, d))


def mixed_dimension_hypergraph(
    n: int,
    m: int,
    dims: Sequence[int],
    seed: SeedLike = None,
    weights: Sequence[float] | None = None,
) -> Hypergraph:
    """m edges whose sizes are drawn from *dims* with optional *weights*.

    Duplicate edges arising across sizes are deduplicated by the canonical
    constructor, so the result can have marginally fewer than m edges; the
    exact count is available from the returned hypergraph.
    """
    if not dims:
        raise ValueError("dims must be non-empty")
    if any(d < 1 or d > n for d in dims):
        raise ValueError(f"edge sizes must lie in [1, n]: {dims}")
    rng = as_generator(seed)
    if weights is not None:
        w = np.asarray(weights, dtype=float)
        if w.size != len(dims) or (w < 0).any() or w.sum() == 0:
            raise ValueError("weights must be non-negative, aligned with dims, not all 0")
        probs = w / w.sum()
    else:
        probs = np.full(len(dims), 1.0 / len(dims))
    sizes = rng.choice(np.asarray(dims, dtype=np.int64), size=m, p=probs)
    edges: list[tuple[int, ...]] = []
    for s in sizes.tolist():
        edge = rng.choice(n, size=s, replace=False)
        edge.sort()
        edges.append(tuple(int(x) for x in edge))
    return Hypergraph(n, edges)


def bounded_edges_instance(
    n: int,
    seed: SeedLike = None,
    *,
    beta_fraction: float = 1.0,
    big_edge_fraction: float = 0.1,
    min_size: int = 2,
) -> Hypergraph:
    """An instance from Theorem 1's regime: ``m ≈ n^β`` with β from §2.2.

    The point of SBL is that the *input* dimension is unrestricted — only
    the edge count is bounded — so a fraction *big_edge_fraction* of the
    edges are large (size ``≈ √n``), and the rest have small sizes drawn
    from ``{min_size, …, min_size+3}``.

    Parameters
    ----------
    n:
        Vertex count.
    beta_fraction:
        Scales the exponent: ``m = max(4, ⌊n^{β·beta_fraction}⌋)``, clamped
        to ``n²`` for tiny n where the asymptotic β is above its meaningful
        range.
    big_edge_fraction:
        Fraction of edges of size ``⌈√n⌉`` (capped at n).
    min_size:
        Smallest small-edge size.
    """
    if n < 4:
        raise ValueError(f"need n >= 4: {n}")
    if not 0.0 <= big_edge_fraction <= 1.0:
        raise ValueError(f"big_edge_fraction out of range: {big_edge_fraction}")
    params = sbl_parameters(n)
    m = max(4, int(n ** (params.beta * beta_fraction)))
    m = min(m, n * n)
    rng = as_generator(seed)
    n_big = int(round(m * big_edge_fraction))
    big_size = min(n, max(min_size + 4, int(math.isqrt(n))))
    edges: list[tuple[int, ...]] = []
    for _ in range(n_big):
        e = rng.choice(n, size=big_size, replace=False)
        e.sort()
        edges.append(tuple(int(x) for x in e))
    small_sizes = rng.integers(min_size, min(min_size + 4, n) + 1, size=m - n_big)
    for s in small_sizes.tolist():
        e = rng.choice(n, size=s, replace=False)
        e.sort()
        edges.append(tuple(int(x) for x in e))
    return Hypergraph(n, edges)


def sparse_random_graph(n: int, avg_degree: float, seed: SeedLike = None) -> Hypergraph:
    """An Erdős–Rényi-style graph (2-uniform hypergraph) with the given mean degree."""
    if n < 2:
        raise ValueError(f"need n >= 2: {n}")
    if avg_degree < 0:
        raise ValueError(f"negative average degree: {avg_degree}")
    m = min(int(round(avg_degree * n / 2.0)), math.comb(n, 2))
    rng = as_generator(seed)
    return Hypergraph(n, _distinct_random_sets(rng, n, m, 2))
