"""Random linear hypergraphs (``|e ∩ e'| ≤ 1``).

Linear hypergraphs are the class for which Luczak and Szymanska (1997)
proved the MIS problem to be in RNC (paper §1 survey).  Generation keeps a
pair-occupancy bitmap over vertex pairs: an edge is accepted only if none
of its internal pairs has been used by an earlier edge, which enforces
linearity exactly.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.util.rng import SeedLike, as_generator

__all__ = ["random_linear_hypergraph", "partial_steiner_triples"]


def random_linear_hypergraph(
    n: int,
    m: int,
    d: int,
    seed: SeedLike = None,
    *,
    max_attempts_factor: int = 64,
) -> Hypergraph:
    """Up to m random edges of size d with pairwise intersections ≤ 1.

    Edges are drawn uniformly and accepted greedily while linear.  If the
    pair budget runs out before m edges are placed (a linear d-uniform
    hypergraph has at most ``C(n,2)/C(d,2)`` edges) the generator raises;
    if random search stalls below the budget it also raises rather than
    looping forever.

    Parameters
    ----------
    n, m, d:
        Vertices, requested edges, edge size (d ≥ 2).
    max_attempts_factor:
        Attempt budget = ``max_attempts_factor · m``.
    """
    if d < 2:
        raise ValueError(f"linearity needs d >= 2: {d}")
    if d > n:
        raise ValueError(f"edge size {d} exceeds vertex count {n}")
    pair_budget = (n * (n - 1) // 2) // (d * (d - 1) // 2)
    if m > pair_budget:
        raise ValueError(
            f"a linear {d}-uniform hypergraph on {n} vertices has at most "
            f"{pair_budget} edges; requested {m}"
        )
    rng = as_generator(seed)
    used = np.zeros((n, n), dtype=bool)  # upper-triangular pair occupancy
    edges: list[tuple[int, ...]] = []
    attempts = 0
    budget = max_attempts_factor * max(m, 1)
    while len(edges) < m:
        attempts += 1
        if attempts > budget:
            raise RuntimeError(
                f"linear generator stalled at {len(edges)}/{m} edges "
                f"(n={n}, d={d}); lower m or raise max_attempts_factor"
            )
        e = rng.choice(n, size=d, replace=False)
        e.sort()
        pairs = list(itertools.combinations(e.tolist(), 2))
        if any(used[a, b] for a, b in pairs):
            continue
        for a, b in pairs:
            used[a, b] = True
        edges.append(tuple(int(x) for x in e))
    return Hypergraph(n, edges)


def partial_steiner_triples(n: int, seed: SeedLike = None) -> Hypergraph:
    """A maximal-ish packing of triples with pairwise intersections ≤ 1.

    Greedy pass over a random permutation of all triples would be Θ(n³);
    instead we randomly probe until stalling, giving a dense partial
    Steiner triple system — a natural hard-ish linear instance.
    """
    if n < 3:
        raise ValueError(f"need n >= 3: {n}")
    target = (n * (n - 1) // 2) // 3
    rng = as_generator(seed)
    while target >= 1:
        try:
            return random_linear_hypergraph(
                n, target, 3, seed=rng, max_attempts_factor=256
            )
        except RuntimeError:
            # Random probing stalls short of the theoretical packing bound
            # (the last few triples require search, not luck); back off.
            target = int(target * 0.85) if target > 1 else 0
    return random_linear_hypergraph(n, 1, 3, seed=rng)
