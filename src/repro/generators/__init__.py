"""Random and structured hypergraph generators.

Workload families used across the examples, tests and experiments:

* :mod:`repro.generators.random_hypergraphs` — d-uniform and
  mixed-dimension random hypergraphs, the bounded-edge-count regime of
  Theorem 1 (``m ≤ n^β``), and sparse graphs (the d = 2 case).
* :mod:`repro.generators.structured` — deterministic families with known
  extremal structure (sunflowers, matchings, stars, tight paths/cycles,
  complete d-uniform blocks) used for unit tests and adversarial probes.
* :mod:`repro.generators.linear` — random *linear* hypergraphs
  (``|e ∩ e'| ≤ 1``), the class Luczak–Szymanska proved to be in RNC.
* :mod:`repro.generators.planted` — instances with a certified planted
  MIS, giving tests (and the :mod:`repro.qa` fuzzer) a solver-independent
  ground truth.
* :mod:`repro.generators.streams` — seeded streaming-update (churn)
  workloads and sharded multi-component starting instances for the
  :mod:`repro.dynamic` repair engine.
"""

from repro.generators.linear import random_linear_hypergraph, partial_steiner_triples
from repro.generators.planted import planted_mis_instance
from repro.generators.random_hypergraphs import (
    bounded_edges_instance,
    mixed_dimension_hypergraph,
    sparse_random_graph,
    uniform_hypergraph,
)
from repro.generators.streams import UpdateBatch, churn_stream, sharded_hypergraph
from repro.generators.structured import (
    complete_uniform,
    matching_hypergraph,
    star_hypergraph,
    sunflower,
    tight_cycle,
    tight_path,
)

__all__ = [
    "uniform_hypergraph",
    "mixed_dimension_hypergraph",
    "bounded_edges_instance",
    "sparse_random_graph",
    "sunflower",
    "matching_hypergraph",
    "star_hypergraph",
    "complete_uniform",
    "tight_path",
    "tight_cycle",
    "random_linear_hypergraph",
    "partial_steiner_triples",
    "planted_mis_instance",
    "UpdateBatch",
    "churn_stream",
    "sharded_hypergraph",
]
