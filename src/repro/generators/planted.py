"""Instances with a *planted* maximal independent set.

Construction: fix a planted set ``I`` of the requested size, then

* give every outside vertex ``v`` a **blocking edge** ``{v} ∪ S`` with
  ``S ⊆ I`` (so ``v`` can never be added to ``I`` — maximality), and
* add background edges that each contain at least one outside vertex
  (so ``I`` stays independent).

The planted set is then provably a maximal independent set of the
instance, giving the tests a known-good certificate that does not depend
on any solver.  Algorithms need not *find* the planted set (MIS is not
unique), but whatever they find must pass the same validator the planted
set passes.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.util.rng import SeedLike, as_generator

__all__ = ["planted_mis_instance"]


def planted_mis_instance(
    n: int,
    extra_edges: int,
    d: int,
    seed: SeedLike = None,
    *,
    planted_fraction: float = 0.5,
) -> tuple[Hypergraph, np.ndarray]:
    """Build an instance together with a certified planted MIS.

    Parameters
    ----------
    n:
        Vertices.
    extra_edges:
        Background edges beyond the blocking edges (one per outsider).
    d:
        Edge size (≥ 2); blocking edges have size ``min(d, |I|+1)``.
    planted_fraction:
        Fraction of vertices in the planted set (strictly between 0 and 1 —
        both sides must be non-empty for the construction to exist).

    Returns
    -------
    (H, planted):
        The hypergraph and the sorted planted vertex ids.
    """
    if d < 2:
        raise ValueError(f"need d >= 2: {d}")
    if not 0.0 < planted_fraction < 1.0:
        raise ValueError(f"planted_fraction must be in (0, 1): {planted_fraction}")
    rng = as_generator(seed)
    size = int(round(n * planted_fraction))
    size = min(max(size, 1), n - 1)
    perm = rng.permutation(n)
    planted = np.sort(perm[:size])
    outside = np.sort(perm[size:])
    in_planted = np.zeros(n, dtype=bool)
    in_planted[planted] = True

    edges: list[tuple[int, ...]] = []
    inner = min(d - 1, int(planted.size))
    for v in outside.tolist():
        S = rng.choice(planted, size=inner, replace=False)
        edges.append(tuple(sorted([v, *S.tolist()])))
    for _ in range(extra_edges):
        # at least one outsider per background edge
        v = int(rng.choice(outside))
        others = rng.choice(n, size=d - 1, replace=False)
        e = tuple(sorted({v, *(int(x) for x in others)}))
        if len(e) >= 2:
            edges.append(e)
    H = Hypergraph(n, edges)
    return H, planted
