"""Seeded streaming-update workloads for the dynamic engine.

:func:`churn_stream` turns a starting hypergraph into a deterministic
sequence of update batches — edge arrivals and departures mixed by
``arrival_fraction``, optionally biased into a *hot region* of the
universe (churn concentrated on one shard, the regime where repair
localization shines) and optionally laced with adversarial injections
borrowed from the qa mutation vocabulary (``dup``: re-add an existing
edge, a structural no-op the exact diff must cancel; ``superset``: add a
strict superset of an existing edge, which changes no MIS but does change
the hypergraph).

The generator tracks the evolving edge set, so every departure targets an
edge that is actually present at that point in the stream and batches
replay cleanly under ``strict=True``.  A departure of an edge added
earlier *in the same batch* cancels the arrival instead (the update API
applies removals before additions, so emitting both would resurrect the
edge).  Everything is a pure function of ``(H, seed, parameters)``.

:func:`sharded_hypergraph` builds the matching initial instance: a
disjoint union of uniform random blocks, i.e. a universe with many
moderate connected components — the dynamic workload's natural shape
(per-shard constraint sets) and the one where component-level repair has
something to localize to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.generators.random_hypergraphs import uniform_hypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.util.rng import SeedLike, as_generator

__all__ = ["UpdateBatch", "churn_stream", "sharded_hypergraph"]

#: Retries when sampling a fresh (non-duplicate) random edge before
#: accepting the duplicate — keeps generation O(1) per event even on
#: near-complete regions.
_FRESH_TRIES = 8


@dataclass(frozen=True)
class UpdateBatch:
    """One batch of edge arrivals and departures."""

    add_edges: tuple[tuple[int, ...], ...]
    remove_edges: tuple[tuple[int, ...], ...]

    @property
    def num_events(self) -> int:
        return len(self.add_edges) + len(self.remove_edges)


def sharded_hypergraph(
    blocks: int, block_n: int, block_m: int, d: int, seed: SeedLike = None
) -> Hypergraph:
    """A disjoint union of *blocks* uniform random blocks.

    Universe is ``blocks · block_n``; block *b* occupies vertices
    ``[b·block_n, (b+1)·block_n)`` with ``block_m`` random size-*d* edges,
    so the instance has (at least) *blocks* connected components.
    """
    if blocks < 1:
        raise ValueError(f"need blocks >= 1: {blocks}")
    rng = as_generator((seed, "sharded"))
    edges: list[tuple[int, ...]] = []
    for b in range(blocks):
        offset = b * block_n
        block = uniform_hypergraph(block_n, block_m, d, seed=int(rng.integers(2**31)))
        edges.extend(tuple(v + offset for v in e) for e in block.edges)
    return Hypergraph(blocks * block_n, edges)


def churn_stream(
    H: Hypergraph,
    steps: int,
    seed: SeedLike = None,
    *,
    batch_edges: int = 4,
    arrival_fraction: float = 0.5,
    hot_fraction: float = 0.0,
    hot_window: float = 0.125,
    adversarial_fraction: float = 0.0,
    dimension: int | None = None,
) -> list[UpdateBatch]:
    """A deterministic churn workload of *steps* update batches against *H*.

    Parameters
    ----------
    H:
        Starting hypergraph; only its edge set and universe are read.
    steps, batch_edges:
        Number of batches and events per batch.
    arrival_fraction:
        Probability an event is an edge arrival (departure otherwise;
        forced to arrival while the current edge set is empty).
    hot_fraction, hot_window:
        With probability *hot_fraction* an event is confined to a fixed
        seed-chosen window of ``ceil(hot_window · universe)`` consecutive
        vertices — hot-region bias.
    adversarial_fraction:
        Probability an arrival is an adversarial injection instead of a
        fresh random edge: ``dup`` (re-add a present edge verbatim) or
        ``superset`` (a present edge plus one extra vertex), split evenly.
    dimension:
        Size of fresh random edges (default: ``H.dimension``, or 3 for an
        edgeless start).
    """
    if steps < 0:
        raise ValueError(f"need steps >= 0: {steps}")
    if batch_edges < 1:
        raise ValueError(f"need batch_edges >= 1: {batch_edges}")
    universe = H.universe
    d = dimension if dimension is not None else (H.dimension or 3)
    if not 1 <= d <= universe:
        raise ValueError(f"edge size {d} does not fit universe {universe}")
    rng = as_generator((seed, "churn"))

    window_size = min(max(d, math.ceil(hot_window * universe)), universe)
    window_start = int(rng.integers(0, universe - window_size + 1)) if universe else 0

    current: list[tuple[int, ...]] = list(H.edges)
    position = {e: i for i, e in enumerate(current)}

    def sample_edge(size: int, hot: bool) -> tuple[int, ...]:
        if hot:
            lo, span = window_start, window_size
        else:
            lo, span = 0, universe
        return tuple(
            sorted(int(v) + lo for v in rng.choice(span, size=size, replace=False))
        )

    def insert(e: tuple[int, ...]) -> None:
        if e not in position:
            position[e] = len(current)
            current.append(e)

    def discard(e: tuple[int, ...]) -> None:
        i = position.pop(e)
        last = current.pop()
        if i < len(current):
            current[i] = last
            position[last] = i

    batches: list[UpdateBatch] = []
    for _ in range(steps):
        adds: list[tuple[int, ...]] = []
        removes: list[tuple[int, ...]] = []
        batch_adds: set[tuple[int, ...]] = set()
        newly_added: set[tuple[int, ...]] = set()
        for _ in range(batch_edges):
            hot = bool(rng.random() < hot_fraction) and window_size >= d
            if bool(rng.random() < arrival_fraction) or not current:
                if current and rng.random() < adversarial_fraction:
                    base = current[int(rng.integers(len(current)))]
                    if rng.random() < 0.5 or len(base) >= universe:
                        edge = base  # dup — a structural no-op
                    else:
                        extra = int(rng.integers(universe))
                        while extra in base:
                            extra = (extra + 1) % universe
                        edge = tuple(sorted(base + (extra,)))  # superset
                else:
                    edge = sample_edge(d, hot)
                    for _try in range(_FRESH_TRIES):
                        if edge not in position:
                            break
                        edge = sample_edge(d, hot)
                adds.append(edge)
                batch_adds.add(edge)
                if edge not in position:
                    newly_added.add(edge)
                insert(edge)
            else:
                edge = current[int(rng.integers(len(current)))]
                if hot:
                    for _try in range(_FRESH_TRIES):
                        if any(window_start <= v < window_start + window_size for v in edge):
                            break
                        edge = current[int(rng.integers(len(current)))]
                discard(edge)
                if edge in batch_adds:
                    # The update API removes before adding, so emitting both
                    # would resurrect the edge — cancel the arrival instead,
                    # and still emit the removal when the edge predates the
                    # batch (its arrival was a dup of a present edge).
                    batch_adds.discard(edge)
                    adds = [a for a in adds if a != edge]
                    if edge not in newly_added:
                        removes.append(edge)
                    newly_added.discard(edge)
                else:
                    removes.append(edge)
        batches.append(UpdateBatch(tuple(adds), tuple(removes)))
    return batches
