"""The asyncio solve server: transports, request lifecycle, dispatch loop.

Request lifecycle (everything except the solve itself runs on the event
loop)::

    transport → parse → cache lookup ──hit──────────────→ respond (cached)
                          │miss
                          ▼
                admission + coalescing (MicroBatcher.submit)
                          │                     │QueueFull
                          ▼                     └────────→ respond (rejected)
                await waiter.future
                          ▲
      dispatch loop: take_batch → AsyncBatchExecutor.solve_batch
                     (expired waiters answered without dispatch)

Instances are held once per content hash: the first request carrying an
instance registers it (and, in pool mode, publishes it into the server's
:class:`~repro.exec.shm.ShmArena` — so a coalesced or repeated instance
crosses the process boundary exactly once, however many requests name
it); later requests may send only the ``content_hash``.

Telemetry: the server opens one root ``service/serve`` span for its
lifetime; each finished request is recorded under it via
:meth:`~repro.obs.tracer.Tracer.record_span` (asyncio request lifetimes
interleave, so the context-manager span stack cannot model them), and the
dispatch thread's ``exec/run_cells`` spans — including spliced worker
spans in pool mode — nest under the same root.  One tree per server run.

Overload behaviour is the design centre: the queue bound converts excess
load into immediate ``rejected`` responses, deadlines stop stale work
before it reaches a solver, and the cache/coalescer mean a hot instance
costs one solve regardless of fan-in.  See docs/service.md.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.core import (
    beame_luby,
    greedy_mis,
    karp_upfal_wigderson,
    linear_hypergraph_mis,
    luby_mis,
    permutation_bl,
    sbl,
)
from repro.exec.aio import AsyncBatchExecutor
from repro.exec.benchfile import BenchSchemaError, load_baseline
from repro.exec.runner import Cell
from repro.exec.shm import ShmArena
from repro.exec.workers import bench_m02_path
from repro.hypergraph.hypergraph import Hypergraph
from repro.obs import metrics as obs_metrics
from repro.obs.tracer import current_tracer
from repro.service.batching import MicroBatcher, PendingCell, QueueFull, Waiter
from repro.service.cache import ResultCache
from repro.service.protocol import (
    ProtocolError,
    SolveRequest,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    parse_solve_request,
)

__all__ = ["ServerConfig", "ServerThread", "SolveServer", "default_algorithms"]


def default_algorithms() -> dict[str, Callable]:
    """The served solver registry (same names the CLI exposes)."""
    return {
        "sbl": sbl,
        "bl": beame_luby,
        "kuw": karp_upfal_wigderson,
        "greedy": greedy_mis,
        "permutation": permutation_bl,
        "luby": luby_mis,
        "linear": linear_hypergraph_mis,
    }


@dataclass
class ServerConfig:
    """Tunables of one :class:`SolveServer`.

    ``workers`` follows the executor convention: ``None``/0 solves
    in-process on a dispatch thread; N > 0 batches onto a
    :class:`~repro.exec.runner.ParallelRunner` with N processes.
    """

    socket_path: str | Path
    http: tuple[str, int] | None = None
    workers: int | None = None
    batch_window_ms: float = 2.0
    max_batch: int = 32
    queue_limit: int = 256
    cache_size: int = 1024
    default_deadline_ms: float | None = None
    verify: bool = True
    latency_window: int = 1024
    algorithms: dict[str, Callable] = field(default_factory=default_algorithms)


def _percentile(sorted_ns: list[int], q: float) -> float:
    """Nearest-rank percentile of an ascending latency sample (ns)."""
    if not sorted_ns:
        return 0.0
    rank = min(len(sorted_ns) - 1, max(0, int(q * len(sorted_ns))))
    return float(sorted_ns[rank])


class SolveServer:
    """One solve service: transports + batcher + cache + executor.

    Use :meth:`start` / :meth:`stop` from a running event loop, or
    :class:`ServerThread` to host a server from synchronous code (the
    CLI's ``repro serve`` blocks on :meth:`serve_forever`).
    """

    def __init__(self, config: ServerConfig):
        self.config = config
        self._algorithms = dict(config.algorithms)
        self._batcher = MicroBatcher(
            window_s=config.batch_window_ms / 1000.0,
            max_batch=config.max_batch,
            max_pending=config.queue_limit,
        )
        self._cache = ResultCache(config.cache_size)
        self._executor = AsyncBatchExecutor(config.workers)
        self._instances: dict[str, Hypergraph] = {}
        self._arena: ShmArena | None = ShmArena() if config.workers else None
        self._handles: dict[str, Any] = {}
        self._latencies_ns: list[int] = []  # ring buffer, latency_window long
        self._latency_pos = 0
        self._last_batch_size = 0
        self._servers: list[asyncio.base_events.Server] = []
        self._dispatch_task: asyncio.Task | None = None
        self._stopped = asyncio.Event()
        self._t_start = time.monotonic()
        self._root_span_id: int | None = None
        self._requests = 0
        self._solved_cells = 0
        self._errors = 0

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Bind the transports and start the dispatch loop."""
        tracer = current_tracer()
        if tracer.enabled:
            self._root_span_id = tracer.record_span(
                "service/serve", 0, socket=str(self.config.socket_path)
            )
        path = Path(self.config.socket_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with contextlib.suppress(FileNotFoundError):
            path.unlink()
        self._servers.append(await asyncio.start_unix_server(self._handle_jsonl, path=str(path)))
        if self.config.http is not None:
            host, port = self.config.http
            self._servers.append(
                await asyncio.start_server(self._handle_http, host=host, port=port)
            )
        self._dispatch_task = asyncio.create_task(
            self._dispatch_loop(), name="repro-service-dispatch"
        )
        self._t_start = time.monotonic()

    @property
    def http_port(self) -> int | None:
        """The bound HTTP port (after :meth:`start`; supports port 0)."""
        if self.config.http is None or len(self._servers) < 2:
            return None
        return self._servers[1].sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` (or cancellation)."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Stop transports and dispatch; release the arena and executor."""
        for server in self._servers:
            server.close()
        for server in self._servers:
            with contextlib.suppress(Exception):
                await server.wait_closed()
        self._servers.clear()
        if self._dispatch_task is not None:
            self._dispatch_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatch_task
            self._dispatch_task = None
        self._executor.close()
        if self._arena is not None:
            self._arena.close()
        with contextlib.suppress(FileNotFoundError):
            Path(self.config.socket_path).unlink()
        self._stopped.set()

    # -- instance registry -----------------------------------------------
    def _register_instance(self, H: Hypergraph, content_hash: str) -> None:
        if content_hash in self._instances:
            return
        self._instances[content_hash] = H
        obs_metrics.inc("service/instances_registered")
        if self._arena is not None:
            # Published exactly once per content: every cell for this
            # instance ships the same few-hundred-byte handle.
            self._handles[content_hash] = self._arena.publish(H)

    def _cell_instance(self, content_hash: str) -> Any:
        if self._arena is not None:
            return self._handles[content_hash]
        return self._instances[content_hash]

    # -- request path (event loop) ---------------------------------------
    async def handle_doc(self, doc: dict[str, Any]) -> dict[str, Any]:
        """Transport-agnostic request handling: one document in, one out."""
        op = doc.get("op", "solve")
        if op == "ping":
            return {"status": "ok", "op": "pong"}
        if op == "stats":
            return {"status": "ok", "op": "stats", "stats": self.stats()}
        if op != "solve":
            return error_response(str(doc.get("id", "")), "bad_request", f"unknown op {op!r}")
        t0 = time.perf_counter_ns()
        self._requests += 1
        obs_metrics.inc("service/requests")
        try:
            req = parse_solve_request(
                doc, algorithms=self._algorithms, default_id=str(self._requests)
            )
        except ProtocolError as exc:
            obs_metrics.inc("service/bad_requests")
            return error_response(str(doc.get("id", "")), "bad_request", str(exc))
        response = await self._solve(req, t0)
        self._finish_request(req, response, t0)
        return response

    async def _solve(self, req: SolveRequest, t0: int) -> dict[str, Any]:
        if req.instance is not None:
            self._register_instance(req.instance, req.content_hash)
        elif req.content_hash not in self._instances:
            obs_metrics.inc("service/unknown_hash")
            return error_response(
                req.id,
                "bad_request",
                f"unknown content_hash {req.content_hash!r}: send the instance "
                f"once before referring to it by hash",
            )
        key = (req.content_hash, req.algorithm, req.seed)
        cached = self._cache.get(key)
        if cached is not None:
            return ok_response(
                req,
                cached,
                cached=True,
                coalesced=False,
                wall_ms=(time.perf_counter_ns() - t0) / 1e6,
            )
        deadline_ms = (
            req.deadline_ms
            if req.deadline_ms is not None
            else self.config.default_deadline_ms
        )
        waiter = Waiter(
            request_id=req.id,
            future=asyncio.get_running_loop().create_future(),
            expires_at=(
                time.monotonic() + deadline_ms / 1000.0
                if deadline_ms is not None
                else None
            ),
            t_arrival_ns=t0,
        )
        try:
            self._batcher.submit(key, waiter, lambda: self._make_work(req))
        except QueueFull as exc:
            return error_response(req.id, "rejected", str(exc), retry=True)
        outcome = await waiter.future
        status, payload = outcome
        wall_ms = (time.perf_counter_ns() - t0) / 1e6
        if status == "ok":
            return ok_response(
                req, payload, cached=False, coalesced=waiter.coalesced, wall_ms=wall_ms
            )
        return error_response(req.id, status, payload)

    def _make_work(self, req: SolveRequest) -> Cell:
        return Cell(
            instance=self._cell_instance(req.content_hash),
            fn=self._algorithms[req.algorithm],
            seed=req.seed,
            verify=self.config.verify and req.verify,
            label=f"{req.algorithm}/{req.content_hash[:12]}/s{req.seed}",
        )

    def _finish_request(self, req: SolveRequest, response: Mapping[str, Any], t0: int) -> None:
        wall_ns = time.perf_counter_ns() - t0
        if len(self._latencies_ns) < self.config.latency_window:
            self._latencies_ns.append(wall_ns)
        else:
            self._latencies_ns[self._latency_pos] = wall_ns
            self._latency_pos = (self._latency_pos + 1) % self.config.latency_window
        status = response.get("status", "error")
        obs_metrics.inc(f"service/responses_{status}")
        if status not in ("ok",):
            self._errors += status in ("error",)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.record_span(
                "service/request",
                wall_ns,
                parent_id=self._root_span_id,
                algorithm=req.algorithm,
                seed=req.seed,
                status=status,
                cached=bool(response.get("cached", False)),
                coalesced=bool(response.get("coalesced", False)),
            )

    # -- dispatch loop ----------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            cells, expired = await self._batcher.take_batch()
            for waiter in expired:
                if not waiter.future.done():
                    waiter.future.set_result(("expired", "deadline passed before dispatch"))
            if not cells:
                continue
            self._last_batch_size = len(cells)
            obs_metrics.inc("service/batches")
            obs_metrics.inc("service/batched_cells", len(cells))
            exec_cells = [c.work for c in cells]
            try:
                outcomes = await self._executor.solve_batch(exec_cells)
            except Exception as exc:  # noqa: BLE001 - dispatch must survive
                outcomes = None
                message = f"dispatch failed: {type(exc).__name__}: {exc}"
            for i, cell in enumerate(cells):
                if outcomes is None:
                    self._resolve_cell(cell, ("error", message))
                    continue
                outcome = outcomes[i]
                if outcome.ok:
                    assert outcome.result is not None
                    r = outcome.result
                    payload = {
                        "mis_size": r.mis_size,
                        "independent_set": r.independent_set.tolist(),
                        "num_rounds": r.num_rounds,
                        "depth": r.depth,
                        "work": r.work,
                        "solve_ms": round(r.wall_ns / 1e6, 3),
                    }
                    self._cache.put(cell.key, payload)
                    self._solved_cells += 1
                    obs_metrics.inc("service/solved_cells")
                    self._resolve_cell(cell, ("ok", payload))
                else:
                    obs_metrics.inc("service/solve_errors")
                    self._resolve_cell(cell, ("error", outcome.error))

    def _resolve_cell(self, cell: PendingCell, outcome: tuple[str, Any]) -> None:
        for waiter in self._batcher.resolve(cell):
            if not waiter.future.done():
                waiter.future.set_result(outcome)

    # -- transports -------------------------------------------------------
    async def _handle_jsonl(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """JSON-lines over the unix socket; requests pipeline freely.

        Each line spawns its own task so a slow solve never blocks later
        lines on the same connection; a per-connection lock serialises the
        interleaved response writes.
        """
        obs_metrics.inc("service/connections")
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def answer(doc_or_error) -> None:
            if isinstance(doc_or_error, dict):
                response = await self.handle_doc(doc_or_error)
            else:
                response = doc_or_error
            async with write_lock:
                writer.write(encode_line(response))
                with contextlib.suppress(ConnectionError):
                    await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    doc = decode_line(line)
                except ProtocolError as exc:
                    doc = error_response("", "bad_request", str(exc))
                task = asyncio.create_task(answer(doc))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # server stopping with the connection open
        finally:
            for task in tasks:
                task.cancel()
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Minimal HTTP/1.1: POST /solve, GET /metrics, GET /healthz.

        One request per connection (``Connection: close``) — the HTTP
        transport exists for curl/scrape ergonomics; high-rate clients
        should pipeline JSON lines over the unix socket.
        """
        obs_metrics.inc("service/http_requests")
        try:
            request_line = (await reader.readline()).decode("latin-1").strip()
            parts = request_line.split()
            if len(parts) != 3:
                await self._http_reply(writer, 400, "text/plain", b"bad request line\n")
                return
            method, target, _version = parts
            headers: dict[str, str] = {}
            while True:
                raw = await reader.readline()
                line = raw.decode("latin-1").strip()
                if not line:
                    break
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
            if method == "GET" and target == "/healthz":
                await self._http_reply(writer, 200, "text/plain", b"ok\n")
            elif method == "GET" and target == "/metrics":
                from repro.obs.export import render_openmetrics
                from repro.obs.metrics import default_registry

                for name, value in self.liveness_gauges().items():
                    default_registry().gauge(name).set(value)
                text = render_openmetrics(
                    default_registry().snapshot(), labels={"command": "serve"}
                )
                await self._http_reply(
                    writer,
                    200,
                    "application/openmetrics-text; version=1.0.0",
                    text.encode("utf-8"),
                )
            elif method == "POST" and target == "/solve":
                length = int(headers.get("content-length", "0"))
                body = await reader.readexactly(length) if length else b""
                try:
                    doc = decode_line(body)
                    response = await self.handle_doc(doc)
                except ProtocolError as exc:
                    response = error_response("", "bad_request", str(exc))
                status = 200 if response.get("status") == "ok" else _http_status(response)
                await self._http_reply(
                    writer,
                    status,
                    "application/json",
                    json.dumps(response).encode("utf-8") + b"\n",
                )
            else:
                await self._http_reply(writer, 404, "text/plain", b"not found\n")
        except (ConnectionError, asyncio.IncompleteReadError, ValueError):
            pass
        except asyncio.CancelledError:
            pass  # server stopping with the connection open
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    @staticmethod
    async def _http_reply(
        writer: asyncio.StreamWriter, status: int, ctype: str, body: bytes
    ) -> None:
        reason = _HTTP_REASONS.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- introspection ----------------------------------------------------
    def liveness_gauges(self) -> dict[str, float]:
        """Service gauges for the heartbeat's ``extra`` hook.

        Queue depth, in-flight cells, last batch occupancy, cache hit
        rate and request-latency p50/p99 (ms) over the ring buffer —
        published through the existing heartbeat/OpenMetrics path.
        """
        sample = sorted(self._latencies_ns)
        return {
            "service/queue_depth": float(self._batcher.depth),
            "service/pending_requests": float(self._batcher.pending_requests),
            "service/inflight_cells": float(self._batcher.inflight),
            "service/batch_occupancy": self._last_batch_size / self.config.max_batch,
            "service/cache_hit_rate": round(self._cache.hit_rate, 4),
            "service/cache_size": float(len(self._cache)),
            "service/latency_p50_ms": round(_percentile(sample, 0.50) / 1e6, 3),
            "service/latency_p99_ms": round(_percentile(sample, 0.99) / 1e6, 3),
        }

    def stats(self) -> dict[str, Any]:
        """The ``stats`` op payload: counters, occupancy, dispatch context."""
        m02: dict[str, Any] = {}
        try:
            baseline = load_baseline(bench_m02_path(), require_speedups=True)
            m02 = {
                "best_speedup_vs_serial": baseline.best_speedup(),
                "machine_id": baseline.machine_id,
            }
        except (OSError, json.JSONDecodeError, BenchSchemaError) as exc:
            m02 = {"error": f"{type(exc).__name__}: {exc}"}
        return {
            "uptime_s": round(time.monotonic() - self._t_start, 3),
            "workers": self._executor.workers,
            "requests": self._requests,
            "solved_cells": self._solved_cells,
            "instances": len(self._instances),
            "cache": {
                "size": len(self._cache),
                "capacity": self._cache.capacity,
                "hits": self._cache.hits,
                "misses": self._cache.misses,
                "evictions": self._cache.evictions,
                "hit_rate": round(self._cache.hit_rate, 4),
            },
            "queue": {
                "depth": self._batcher.depth,
                "pending_requests": self._batcher.pending_requests,
                "inflight_cells": self._batcher.inflight,
                "limit": self.config.queue_limit,
            },
            "batch": {
                "window_ms": self.config.batch_window_ms,
                "max_batch": self.config.max_batch,
                "last_size": self._last_batch_size,
            },
            "gauges": self.liveness_gauges(),
            "bench_m02": m02,
        }


class ServerThread:
    """Host a :class:`SolveServer` on a background thread (own event loop).

    For synchronous callers — tests, the m03 load benchmark, anything
    that wants a live server without running asyncio itself::

        with ServerThread(config) as handle:
            client = SolveClient(config.socket_path)
            ...

    ``start`` blocks until the transports are bound; ``stop`` is
    idempotent and joins the thread.
    """

    def __init__(self, config: ServerConfig):
        self.config = config
        self.server: SolveServer | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None

    def start(self, timeout: float = 10.0) -> "ServerThread":
        if self._thread is not None:
            raise RuntimeError("server thread already running")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("server thread failed to start in time")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error}")
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = SolveServer(self.config)
        try:
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._error = exc
            self._started.set()
            return
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            await self.server.stop()

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


def _http_status(response: Mapping[str, Any]) -> int:
    return {
        "rejected": 429,
        "expired": 504,
        "bad_request": 400,
        "error": 500,
    }.get(str(response.get("status")), 500)
