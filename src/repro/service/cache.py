"""The LRU result cache: repeat solves answered without touching a solver.

Results are tiny (an independent set over a few thousand vertices) next
to the work of producing them, and service traffic is heavily repetitive
by construction — the same benchmark instances, the same seeds.  The
cache keys on the full determinism triple ``(content_hash, algorithm,
seed)``: solvers are bit-reproducible per seed, so a cached payload *is*
the payload a fresh solve would produce, and serving it changes latency
only.

Plain ``OrderedDict`` LRU, single-threaded by design (every access
happens on the server's event loop).  Counters land on the ambient
metrics registry (``service/cache_hits`` / ``_misses`` / ``_evictions``)
and are mirrored as attributes for the ``stats`` op and tests.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Mapping

from repro.obs import metrics as obs_metrics

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded LRU of solve-result payloads.

    Parameters
    ----------
    capacity:
        Maximum number of cached results; 0 disables caching entirely
        (every ``get`` misses, ``put`` is a no-op).
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0: {capacity}")
        self.capacity = int(capacity)
        self._data: OrderedDict[Hashable, Mapping[str, Any]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Mapping[str, Any] | None:
        """The cached payload for *key* (refreshing its recency), or ``None``."""
        payload = self._data.get(key)
        if payload is None:
            self.misses += 1
            obs_metrics.inc("service/cache_misses")
            return None
        self._data.move_to_end(key)
        self.hits += 1
        obs_metrics.inc("service/cache_hits")
        return payload

    def put(self, key: Hashable, payload: Mapping[str, Any]) -> None:
        """Insert/refresh *key*; evicts least-recently-used past capacity."""
        if self.capacity == 0:
            return
        self._data[key] = payload
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1
            obs_metrics.inc("service/cache_evictions")

    @property
    def hit_rate(self) -> float:
        """Hits over lookups so far (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def keys(self) -> list[Hashable]:
        """Current keys, least-recently-used first (tests/debugging)."""
        return list(self._data.keys())
