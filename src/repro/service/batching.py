"""Request coalescing, admission control and micro-batch assembly.

The service's throughput lever is the same one inference servers pull:
don't solve per request, solve per *cell*.  A cell is the determinism
triple ``(content_hash, algorithm, seed)`` — every request with the same
triple wants the byte-identical answer, so concurrent duplicates attach
to one in-flight cell as extra *waiters* and a single solve resolves all
of them.

:class:`MicroBatcher` owns the pending state and the two protection
mechanisms:

* **Admission control** — the number of queued *requests* (waiters on
  undispatched cells) is bounded; past the bound, :meth:`submit` raises
  :class:`QueueFull` and the server answers ``rejected`` immediately.
  Overload therefore costs the client a round-trip, not a pile-up.
* **Deadlines** — each waiter carries an absolute expiry; at dispatch
  time :meth:`take_batch` drops expired waiters (they get an ``expired``
  response) and skips cells whose waiters *all* expired, so a stale
  backlog never wastes solver time.

Everything here runs on the server's event loop — single-threaded, so no
locks; the asyncio primitives (one Event) exist only to let the dispatch
loop sleep until work arrives.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs import metrics as obs_metrics

__all__ = ["MicroBatcher", "PendingCell", "QueueFull", "Waiter"]

#: The coalescing key: (content_hash, algorithm, seed).
CellKey = tuple[str, str, int]


class QueueFull(Exception):
    """Admission control: the pending queue is at its bound (429 analogue)."""


@dataclass
class Waiter:
    """One request waiting on a cell's result."""

    request_id: str
    future: asyncio.Future
    #: Absolute monotonic expiry (``None`` = no deadline).
    expires_at: float | None
    #: Arrival timestamp (perf_counter_ns) for latency accounting.
    t_arrival_ns: int
    coalesced: bool = False

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at


@dataclass
class PendingCell:
    """One coalesced unit of solver work plus everyone waiting on it."""

    key: CellKey
    #: Opaque work descriptor the server attaches (instance + solver fn);
    #: the batcher never looks inside it.
    work: Any
    waiters: list[Waiter] = field(default_factory=list)


class MicroBatcher:
    """Coalescing admission queue with micro-batch windows.

    Parameters
    ----------
    window_s:
        How long :meth:`take_batch` keeps gathering after the first cell
        arrives.  0 dispatches as soon as the queue is non-empty (lowest
        latency, least batching).
    max_batch:
        Max cells per dispatched batch.
    max_pending:
        Admission bound on queued requests (waiters across undispatched
        cells; in-flight cells no longer count — their work is already
        committed).
    """

    def __init__(self, *, window_s: float = 0.002, max_batch: int = 32, max_pending: int = 256):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1: {max_batch}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1: {max_pending}")
        self.window_s = max(0.0, float(window_s))
        self.max_batch = int(max_batch)
        self.max_pending = int(max_pending)
        #: Undispatched cells in arrival order (dict preserves insertion).
        self._queued: dict[CellKey, PendingCell] = {}
        #: Dispatched, unresolved cells — late duplicates still coalesce here.
        self._inflight: dict[CellKey, PendingCell] = {}
        self._pending_requests = 0
        self._nonempty = asyncio.Event()

    # -- introspection ---------------------------------------------------
    @property
    def depth(self) -> int:
        """Undispatched cells (the 'queue depth' service gauge)."""
        return len(self._queued)

    @property
    def pending_requests(self) -> int:
        """Waiters on undispatched cells (what admission control bounds)."""
        return self._pending_requests

    @property
    def inflight(self) -> int:
        """Dispatched cells not yet resolved."""
        return len(self._inflight)

    # -- submission (event-loop side) ------------------------------------
    def submit(
        self,
        key: CellKey,
        waiter: Waiter,
        make_work: Callable[[], Any],
    ) -> bool:
        """Attach *waiter* to the cell for *key*; returns ``True`` if coalesced.

        A queued or in-flight cell with the same key absorbs the waiter
        (no new work).  Otherwise *make_work* builds the cell's work
        descriptor and the cell joins the queue — unless the admission
        bound is hit first, in which case :class:`QueueFull` is raised
        and no state changes.
        """
        cell = self._queued.get(key) or self._inflight.get(key)
        if cell is not None:
            waiter.coalesced = True
            cell.waiters.append(waiter)
            if key in self._queued:
                self._pending_requests += 1
            obs_metrics.inc("service/coalesced")
            return True
        if self._pending_requests >= self.max_pending:
            obs_metrics.inc("service/rejected")
            raise QueueFull(
                f"queue full: {self._pending_requests} pending requests "
                f"(limit {self.max_pending})"
            )
        self._queued[key] = PendingCell(key=key, work=make_work(), waiters=[waiter])
        self._pending_requests += 1
        self._nonempty.set()
        return False

    # -- dispatch (dispatch-loop side) -----------------------------------
    async def take_batch(
        self, *, clock: Callable[[], float] = time.monotonic
    ) -> tuple[list[PendingCell], list[Waiter]]:
        """Wait for work, gather one micro-batch, and move it in-flight.

        Returns ``(cells, expired)``: cells to dispatch (each with at
        least one live waiter) and the waiters whose deadlines passed
        while queued — the caller answers those with ``expired`` and must
        not solve for them.  Cells whose waiters all expired are dropped
        entirely (counted on ``service/cells_expired``).
        """
        await self._nonempty.wait()
        if self.window_s > 0:
            await asyncio.sleep(self.window_s)
        now = clock()
        cells: list[PendingCell] = []
        expired: list[Waiter] = []
        for key in list(self._queued):
            if len(cells) >= self.max_batch:
                break
            cell = self._queued.pop(key)
            self._pending_requests -= len(cell.waiters)
            live = [w for w in cell.waiters if not w.expired(now)]
            expired.extend(w for w in cell.waiters if w.expired(now))
            if not live:
                obs_metrics.inc("service/cells_expired")
                continue
            cell.waiters = live
            self._inflight[key] = cell
            cells.append(cell)
        if not self._queued:
            self._nonempty.clear()
        if expired:
            obs_metrics.inc("service/deadline_expired", len(expired))
        return cells, expired

    def resolve(self, cell: PendingCell) -> list[Waiter]:
        """Retire an in-flight cell; returns the waiters to answer.

        Waiters that coalesced onto the cell *after* dispatch are
        included — they were promised this very solve.
        """
        self._inflight.pop(cell.key, None)
        waiters, cell.waiters = cell.waiters, []
        return waiters
