"""Clients for the solve service: a blocking socket client and a load generator.

:class:`SolveClient` is the deliberately boring piece — a synchronous
JSON-lines conversation over the unix socket, one ``sendall`` + buffered
``readline`` per call.  It is what ``repro client solve`` and tests use.

:func:`run_load` is the async load generator behind the CI smoke and
``benchmarks/bench_m03_service.py``: it opens *connections* concurrent
unix-socket streams, fires a request schedule (with planned duplicates to
exercise coalescing), and folds the responses into a :class:`LoadReport`
with throughput and tail-latency percentiles.
"""

from __future__ import annotations

import asyncio
import contextlib
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.hypergraph.hypergraph import Hypergraph
from repro.service.protocol import (
    ERROR_STATUSES,
    ProtocolError,
    decode_line,
    encode_instance,
    encode_line,
)

__all__ = ["LoadReport", "ServiceError", "SolveClient", "run_load"]


class ServiceError(RuntimeError):
    """A non-``ok`` response, surfaced with its status and message."""

    def __init__(self, status: str, message: str, response: Mapping[str, Any]):
        super().__init__(f"{status}: {message}")
        self.status = status
        self.response = dict(response)


def _raise_for_status(response: Mapping[str, Any]) -> dict[str, Any]:
    status = str(response.get("status", "error"))
    if status == "ok":
        return dict(response)
    message = str(response.get("error", "<no message>"))
    if status not in ERROR_STATUSES:
        status = "error"
    raise ServiceError(status, message, response)


class SolveClient:
    """Blocking JSON-lines client over the service's unix socket.

    One connection per client; requests on a single client are strictly
    sequential (send, then read one response line).  Use several clients
    — or :func:`run_load` — for concurrency.
    """

    def __init__(self, socket_path: str | Path, *, timeout: float = 30.0):
        self.socket_path = str(socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(self.socket_path)
        self._rfile = self._sock.makefile("rb")

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SolveClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """Send one raw protocol document; return the raw response dict."""
        self._sock.sendall(encode_line(doc))
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        try:
            return decode_line(line)
        except ProtocolError as exc:  # pragma: no cover - server always sends JSON
            raise ConnectionError(f"undecodable response: {exc}") from exc

    def solve(
        self,
        instance: Hypergraph | str | Mapping[str, Any] | None = None,
        *,
        algorithm: str,
        seed: int = 0,
        content_hash: str | None = None,
        deadline_ms: float | None = None,
        verify: bool = True,
        request_id: str | None = None,
    ) -> dict[str, Any]:
        """One solve round-trip; raises :class:`ServiceError` on non-``ok``."""
        doc: dict[str, Any] = {"op": "solve", "algorithm": algorithm, "seed": seed}
        if isinstance(instance, Hypergraph):
            doc["instance"] = encode_instance(instance)
        elif instance is not None:
            doc["instance"] = instance
        if content_hash is not None:
            doc["content_hash"] = content_hash
        if deadline_ms is not None:
            doc["deadline_ms"] = deadline_ms
        if not verify:
            doc["verify"] = False
        if request_id is not None:
            doc["id"] = request_id
        return _raise_for_status(self.request(doc))

    def ping(self) -> bool:
        """Liveness round-trip."""
        return self.request({"op": "ping"}).get("op") == "pong"

    def stats(self) -> dict[str, Any]:
        """The server's ``stats`` snapshot."""
        return _raise_for_status(self.request({"op": "stats"}))["stats"]


# -- load generation -------------------------------------------------------


@dataclass
class LoadReport:
    """Aggregate outcome of one :func:`run_load` run."""

    total: int
    ok: int
    cached: int
    coalesced: int
    rejected: int
    expired: int
    errors: int
    wall_s: float
    latencies_ns: list[int] = field(default_factory=list)
    responses: list[dict[str, Any]] = field(default_factory=list)

    @property
    def requests_per_s(self) -> float:
        return self.total / self.wall_s if self.wall_s > 0 else 0.0

    def percentile_ns(self, q: float) -> float:
        """Nearest-rank latency percentile over completed requests (ns)."""
        if not self.latencies_ns:
            return 0.0
        sample = sorted(self.latencies_ns)
        rank = min(len(sample) - 1, max(0, int(q * len(sample))))
        return float(sample[rank])

    def summary(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "ok": self.ok,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "expired": self.expired,
            "errors": self.errors,
            "wall_s": round(self.wall_s, 4),
            "requests_per_s": round(self.requests_per_s, 2),
            "latency_p50_ms": round(self.percentile_ns(0.50) / 1e6, 3),
            "latency_p90_ms": round(self.percentile_ns(0.90) / 1e6, 3),
            "latency_p99_ms": round(self.percentile_ns(0.99) / 1e6, 3),
        }


async def _drive_connection(
    socket_path: str,
    docs: Sequence[Mapping[str, Any]],
    latencies: list[int],
    responses: list[dict[str, Any]],
) -> None:
    """One connection's work: pipeline all *docs*, then collect responses.

    Requests are written back-to-back (no wait-for-response) so duplicates
    across connections genuinely overlap in the server — that concurrency
    is what the coalescing assertions in the smoke test depend on.
    """
    reader, writer = await asyncio.open_unix_connection(socket_path)
    try:
        t_send: dict[str, int] = {}
        for i, doc in enumerate(docs):
            doc = dict(doc)
            doc.setdefault("id", f"c{id(writer) & 0xFFFF:x}-{i}")
            t_send[str(doc["id"])] = time.perf_counter_ns()
            writer.write(encode_line(doc))
        await writer.drain()
        for _ in docs:
            line = await reader.readline()
            if not line:
                raise ConnectionError("server closed mid-load")
            response = decode_line(line)
            t0 = t_send.get(str(response.get("id", "")))
            if t0 is not None:
                latencies.append(time.perf_counter_ns() - t0)
            responses.append(response)
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


async def run_load(
    socket_path: str | Path,
    docs: Sequence[Mapping[str, Any]],
    *,
    connections: int = 8,
) -> LoadReport:
    """Fire *docs* across *connections* concurrent streams; fold a report.

    Documents are distributed round-robin, preserving relative order
    within a connection.  Duplicate documents placed on *different*
    connections arrive concurrently and exercise the server's coalescer.
    """
    socket_path = str(socket_path)
    connections = max(1, min(connections, len(docs) or 1))
    lanes: list[list[Mapping[str, Any]]] = [[] for _ in range(connections)]
    for i, doc in enumerate(docs):
        lanes[i % connections].append(doc)
    latencies: list[int] = []
    responses: list[dict[str, Any]] = []
    t0 = time.perf_counter()
    await asyncio.gather(
        *(
            _drive_connection(socket_path, lane, latencies, responses)
            for lane in lanes
            if lane
        )
    )
    wall_s = time.perf_counter() - t0
    counts = {"ok": 0, "cached": 0, "coalesced": 0, "rejected": 0, "expired": 0, "errors": 0}
    for response in responses:
        status = response.get("status")
        if status == "ok":
            counts["ok"] += 1
            counts["cached"] += bool(response.get("cached"))
            counts["coalesced"] += bool(response.get("coalesced"))
        elif status == "rejected":
            counts["rejected"] += 1
        elif status == "expired":
            counts["expired"] += 1
        else:
            counts["errors"] += 1
    return LoadReport(
        total=len(responses),
        wall_s=wall_s,
        latencies_ns=latencies,
        responses=responses,
        **counts,
    )
