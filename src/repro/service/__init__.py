"""repro.service — MIS-as-a-service: the async batching solve server.

The front door on the executor substrate.  A long-running asyncio server
accepts solve requests over a unix socket (JSON-lines) and optionally
HTTP/1.1, and turns concurrent traffic into efficient batch execution:

* **Coalescing** — concurrent requests for the same
  ``(content_hash, algorithm, seed)`` share one in-flight cell; one solve
  answers all of them with identical payloads
  (:mod:`repro.service.batching`).
* **Micro-batching** — queued cells are dispatched together onto an
  :class:`~repro.exec.aio.AsyncBatchExecutor` after a short gathering
  window, amortising dispatch overhead exactly like inference-server
  request batching (:mod:`repro.service.server`).
* **Result caching** — completed solves land in an LRU cache keyed by
  ``(content_hash, algorithm, seed)``; repeats are answered without
  touching the executor (:mod:`repro.service.cache`).
* **Admission control** — a bounded pending queue rejects excess load
  (the 429 analogue) and per-request deadlines expire stale requests
  *before* they are dispatched, so overload degrades into fast failures
  instead of collapse (:mod:`repro.service.batching`).

Telemetry rides the existing :mod:`repro.obs` stack: per-request spans
spliced into one tree, service counters/gauges published through the
heartbeat's OpenMetrics textfile, executor spans via the normal worker
splice.  :mod:`repro.service.client` is the matching blocking client and
async load generator (used by ``repro client solve``, the CI smoke and
``benchmarks/bench_m03_service.py``).
"""

from repro.service.cache import ResultCache
from repro.service.client import LoadReport, ServiceError, SolveClient, run_load
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    SolveRequest,
    decode_line,
    encode_instance,
    encode_line,
    parse_solve_request,
)
from repro.service.server import ServerConfig, ServerThread, SolveServer, default_algorithms

__all__ = [
    "PROTOCOL_VERSION",
    "LoadReport",
    "ProtocolError",
    "ResultCache",
    "ServerConfig",
    "ServerThread",
    "ServiceError",
    "SolveClient",
    "SolveRequest",
    "SolveServer",
    "decode_line",
    "default_algorithms",
    "encode_instance",
    "encode_line",
    "parse_solve_request",
    "run_load",
]
