"""The solve-service wire protocol: JSON lines, one object per message.

Requests and responses are single JSON objects separated by ``\\n`` —
trivially composable from any language, debuggable with ``nc -U`` and
``jq``, and the same document shape rides the optional HTTP transport as
a POST body.

Request (``op: "solve"``, the default)::

    {"id": "r1", "algorithm": "bl", "seed": 7,
     "instance": {"universe": 9, "edges": [[0,1,2], [2,3]]},
     "deadline_ms": 250, "verify": true}

``instance`` is either the JSON object form above or a string in the
:mod:`repro.hypergraph.hio` text format.  A client that already knows the
server holds the instance (a previous request published it) sends
``content_hash`` instead — the dedup key of
:meth:`~repro.hypergraph.hypergraph.Hypergraph.content_hash` — and skips
shipping the arrays entirely.

Response::

    {"id": "r1", "status": "ok", "mis_size": 4, "independent_set": [...],
     "num_rounds": 3, "algorithm": "bl", "seed": 7, "content_hash": "…",
     "cached": false, "coalesced": false, "wall_ms": 1.93}

``status`` values: ``ok``; ``rejected`` (admission control — the queue is
full, the 429 analogue); ``expired`` (the request's deadline passed
before dispatch); ``bad_request`` (malformed document, unknown algorithm,
unknown content hash); ``error`` (the solve itself failed).  Non-``ok``
responses carry ``error`` (message) instead of a result.

Two auxiliary ops: ``{"op": "ping"}`` → ``{"status": "ok", "op": "pong"}``
and ``{"op": "stats"}`` → a server-state snapshot (counters, cache and
queue occupancy, uptime).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.hypergraph.hio import loads as hio_loads
from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SolveRequest",
    "decode_line",
    "encode_line",
    "encode_instance",
    "parse_solve_request",
    "ok_response",
    "error_response",
]

PROTOCOL_VERSION = 1

#: Non-ok response statuses (``ok`` is the only success status).
ERROR_STATUSES = ("rejected", "expired", "bad_request", "error")


class ProtocolError(ValueError):
    """A request document that cannot be honoured; maps to ``bad_request``."""


@dataclass(frozen=True)
class SolveRequest:
    """One validated solve request, instance already materialised.

    Exactly one of ``instance`` / ``content_hash`` was provided by the
    client; when ``instance`` is set, ``content_hash`` is filled in from
    it so the coalescing key is always available.
    """

    id: str
    algorithm: str
    seed: int
    instance: Hypergraph | None
    content_hash: str
    deadline_ms: float | None
    verify: bool


def encode_line(doc: Mapping[str, Any]) -> bytes:
    """Serialise one protocol message to a JSON line (trailing newline)."""
    return (json.dumps(doc, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one wire line into a dict; raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not UTF-8: {exc}") from exc
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError(f"request must be a JSON object, got {type(doc).__name__}")
    return doc


def encode_instance(H: Hypergraph) -> dict[str, Any]:
    """The JSON object form of an instance (inverse of the decoder)."""
    doc: dict[str, Any] = {
        "universe": H.universe,
        "edges": [list(e) for e in H.edges],
    }
    if H.vertices.size != H.universe:
        doc["vertices"] = H.vertices.tolist()
    return doc


def _decode_instance(value: Any) -> Hypergraph:
    if isinstance(value, str):
        try:
            return hio_loads(value)
        except ValueError as exc:
            raise ProtocolError(f"bad instance text: {exc}") from exc
    if isinstance(value, Mapping):
        if "universe" not in value:
            raise ProtocolError("instance object needs a 'universe' field")
        try:
            return Hypergraph(
                int(value["universe"]),
                [tuple(int(v) for v in e) for e in value.get("edges", ())],
                vertices=value.get("vertices"),
            )
        except (TypeError, ValueError, IndexError) as exc:
            raise ProtocolError(f"bad instance object: {exc}") from exc
    raise ProtocolError(f"instance must be an object or hio text, got {type(value).__name__}")


def _require_type(doc: Mapping[str, Any], key: str, types: tuple, default: Any) -> Any:
    value = doc.get(key, default)
    if value is default:
        return default
    if isinstance(value, bool) and bool not in types:
        raise ProtocolError(f"{key!r} must be {types}, got bool")
    if not isinstance(value, types):
        raise ProtocolError(
            f"{key!r} must be {'/'.join(t.__name__ for t in types)}, "
            f"got {type(value).__name__}"
        )
    return value


def parse_solve_request(
    doc: Mapping[str, Any],
    *,
    algorithms: Iterable[str],
    default_id: str = "",
) -> SolveRequest:
    """Validate one solve document; raises :class:`ProtocolError` loudly.

    *algorithms* is the server's registry of known solver names; anything
    else is a ``bad_request`` (never a 500) so clients get actionable
    errors for typos.
    """
    known = set(algorithms)
    algorithm = _require_type(doc, "algorithm", (str,), None)
    if algorithm is None:
        raise ProtocolError("missing 'algorithm'")
    if algorithm not in known:
        raise ProtocolError(f"unknown algorithm {algorithm!r}; known: {sorted(known)}")
    seed = _require_type(doc, "seed", (int,), 0)
    verify = bool(doc.get("verify", True))
    deadline = _require_type(doc, "deadline_ms", (int, float), None)
    if deadline is not None and deadline <= 0:
        raise ProtocolError(f"'deadline_ms' must be positive, got {deadline}")
    req_id = doc.get("id", default_id)
    if not isinstance(req_id, (str, int)):
        raise ProtocolError(f"'id' must be a string or int, got {type(req_id).__name__}")

    instance_field = doc.get("instance")
    hash_field = _require_type(doc, "content_hash", (str,), None)
    if instance_field is None and hash_field is None:
        raise ProtocolError("need 'instance' or 'content_hash'")
    instance = _decode_instance(instance_field) if instance_field is not None else None
    if instance is not None:
        computed = instance.content_hash()
        if hash_field is not None and hash_field != computed:
            raise ProtocolError(
                f"content_hash mismatch: sent {hash_field!r}, instance hashes "
                f"to {computed!r}"
            )
        hash_field = computed
    assert hash_field is not None
    return SolveRequest(
        id=str(req_id),
        algorithm=algorithm,
        seed=int(seed),
        instance=instance,
        content_hash=hash_field,
        deadline_ms=float(deadline) if deadline is not None else None,
        verify=verify,
    )


def ok_response(
    req: SolveRequest,
    payload: Mapping[str, Any],
    *,
    cached: bool,
    coalesced: bool,
    wall_ms: float,
) -> dict[str, Any]:
    """Assemble the success response for one request.

    *payload* is the per-key solve result (``mis_size``,
    ``independent_set``, ``num_rounds``, ``depth``, ``work``) shared
    verbatim by every coalesced/cached consumer of the same cell — that
    sharing is what makes "identical payloads" a structural guarantee
    rather than a property to test for.
    """
    return {
        "id": req.id,
        "status": "ok",
        "algorithm": req.algorithm,
        "seed": req.seed,
        "content_hash": req.content_hash,
        **payload,
        "cached": cached,
        "coalesced": coalesced,
        "wall_ms": round(wall_ms, 3),
    }


def error_response(req_id: str, status: str, message: str, **extra: Any) -> dict[str, Any]:
    """Assemble a non-``ok`` response (status must be a known error status)."""
    assert status in ERROR_STATUSES, status
    return {"id": req_id, "status": status, "error": message, **extra}
