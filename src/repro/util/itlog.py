"""Iterated logarithms and related closed forms.

The paper's parameters are all phrased in terms of iterated logarithms:

* ``log n``         — natural or base-2 logarithm (the paper is agnostic up
  to constants; we default to base 2 and expose the base),
* ``log^(2) n = log log n``,
* ``log^(3) n = log log log n``.

For small ``n`` these compositions become non-positive and the paper's
formulas are only meaningful "for sufficiently large n"; the helpers here
clamp at a configurable floor so that downstream parameter formulas remain
well-defined (and document exactly where the asymptotic regime starts).
"""

from __future__ import annotations

import math

__all__ = ["log_base", "loglog", "logloglog", "ilog", "log2_ceil", "MIN_MEANINGFUL_N"]

#: Smallest n for which log^(3) n (base 2) exceeds 1; below this the paper's
#: parameter formulas degenerate.  2^(2^2) = 16 gives log3 = 1 exactly.
MIN_MEANINGFUL_N = 17


def log_base(x: float, base: float = 2.0) -> float:
    """``log_base(x)`` with a hard error on the non-positive domain."""
    if x <= 0:
        raise ValueError(f"log of non-positive value: {x}")
    return math.log(x, base)


def loglog(n: float, base: float = 2.0, floor: float = 1.0) -> float:
    """``log^(2) n = log log n``, clamped below at *floor*.

    The clamp keeps parameter formulas finite for small ``n`` where the
    asymptotic expressions are meaningless; callers that need the raw value
    can pass ``floor=-math.inf``.
    """
    if n <= 1:
        raise ValueError(f"loglog undefined for n <= 1: {n}")
    inner = log_base(n, base)
    if inner <= 0:
        return floor
    return max(floor, log_base(inner, base)) if floor > -math.inf else log_base(inner, base)


def logloglog(n: float, base: float = 2.0, floor: float = 1.0) -> float:
    """``log^(3) n = log log log n``, clamped below at *floor*."""
    if n <= 1:
        raise ValueError(f"logloglog undefined for n <= 1: {n}")
    inner = loglog(n, base, floor=-math.inf) if n > base else floor
    if inner <= 0:
        return floor
    val = log_base(inner, base) if inner > 0 else floor
    return max(floor, val) if floor > -math.inf else val


def ilog(n: float, k: int, base: float = 2.0, floor: float = 1.0) -> float:
    """The *k*-fold iterated logarithm ``log^(k) n``.

    ``ilog(n, 1) == log n``, ``ilog(n, 2) == log log n`` and so on.  Values
    are clamped below at *floor* as soon as an intermediate iterate drops to
    or below zero.
    """
    if k < 1:
        raise ValueError(f"iteration count must be >= 1: {k}")
    if n <= 1:
        raise ValueError(f"ilog undefined for n <= 1: {n}")
    value = float(n)
    for _ in range(k):
        if value <= 0:
            return floor
        value = log_base(value, base)
    return max(floor, value)


def log2_ceil(n: int) -> int:
    """``ceil(log2 n)`` for positive integers; 0 for ``n == 1``.

    This is the EREW PRAM depth of a broadcast/reduction over *n* items.
    """
    if n < 1:
        raise ValueError(f"log2_ceil undefined for n < 1: {n}")
    return (n - 1).bit_length()
