"""A NumPy-backed fixed-universe bitset.

Vertex subsets over a fixed universe ``{0, …, n-1}`` appear everywhere in
the algorithms (marked sets, independent sets, removed vertices).  Python
``set`` objects are flexible but slow and memory-hungry at scale; this bitset
stores membership as a boolean NumPy array, giving O(1) membership tests,
vectorised bulk updates, and cheap conversion to index arrays.

Only the operations the algorithms need are implemented; the class is
deliberately not a full :class:`collections.abc.MutableSet` to keep the hot
paths free of abstraction overhead (see the HPC guide's advice on avoiding
needless copies and Python-level loops).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["Bitset"]


class Bitset:
    """A subset of ``{0, …, universe-1}`` stored as a boolean array.

    Parameters
    ----------
    universe:
        Size of the ground set.
    members:
        Optional initial members (iterable of ints or an index array).

    Examples
    --------
    >>> b = Bitset(8, [1, 3, 5])
    >>> 3 in b, 4 in b
    (True, False)
    >>> sorted(b)
    [1, 3, 5]
    >>> len(b)
    3
    """

    __slots__ = ("_mask",)

    def __init__(self, universe: int, members: Iterable[int] | None = None):
        if universe < 0:
            raise ValueError(f"universe size must be non-negative: {universe}")
        self._mask = np.zeros(universe, dtype=bool)
        if members is not None:
            idx = np.asarray(list(members) if not isinstance(members, np.ndarray) else members, dtype=np.intp)
            if idx.size:
                if idx.min() < 0 or idx.max() >= universe:
                    raise IndexError("member outside universe")
                self._mask[idx] = True

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "Bitset":
        """Wrap an existing boolean array (copied)."""
        b = cls(0)
        b._mask = np.asarray(mask, dtype=bool).copy()
        return b

    @classmethod
    def full(cls, universe: int) -> "Bitset":
        """The complete set ``{0, …, universe-1}``."""
        b = cls(0)
        b._mask = np.ones(universe, dtype=bool)
        return b

    # -- basic protocol ----------------------------------------------------
    @property
    def universe(self) -> int:
        """Size of the ground set."""
        return int(self._mask.size)

    @property
    def mask(self) -> np.ndarray:
        """The underlying boolean array (read-only view)."""
        view = self._mask.view()
        view.flags.writeable = False
        return view

    def __contains__(self, v: int) -> bool:
        return 0 <= v < self._mask.size and bool(self._mask[v])

    def __len__(self) -> int:
        return int(self._mask.sum())

    def __iter__(self) -> Iterator[int]:
        return iter(np.flatnonzero(self._mask).tolist())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitset):
            return NotImplemented
        return self._mask.size == other._mask.size and bool((self._mask == other._mask).all())

    def __hash__(self):  # pragma: no cover - mutable container
        raise TypeError("Bitset is unhashable (mutable)")

    def __repr__(self) -> str:
        n = len(self)
        preview = np.flatnonzero(self._mask)[:8].tolist()
        suffix = ", …" if n > 8 else ""
        return f"Bitset(universe={self.universe}, size={n}, members={preview}{suffix})"

    # -- mutation ----------------------------------------------------------
    def add(self, v: int) -> None:
        """Insert one element."""
        self._mask[v] = True

    def discard(self, v: int) -> None:
        """Remove one element if present."""
        if 0 <= v < self._mask.size:
            self._mask[v] = False

    def update(self, members: Iterable[int] | np.ndarray) -> None:
        """Bulk insert (vectorised)."""
        idx = np.asarray(list(members) if not isinstance(members, np.ndarray) else members, dtype=np.intp)
        if idx.size:
            self._mask[idx] = True

    def difference_update(self, members: Iterable[int] | np.ndarray) -> None:
        """Bulk remove (vectorised)."""
        idx = np.asarray(list(members) if not isinstance(members, np.ndarray) else members, dtype=np.intp)
        if idx.size:
            self._mask[idx] = False

    # -- set algebra ---------------------------------------------------------
    def _check_same_universe(self, other: "Bitset") -> None:
        if self._mask.size != other._mask.size:
            raise ValueError(
                f"universe mismatch: {self._mask.size} vs {other._mask.size}"
            )

    def union(self, other: "Bitset") -> "Bitset":
        """Return ``self | other`` as a new bitset."""
        self._check_same_universe(other)
        return Bitset.from_mask(self._mask | other._mask)

    def intersection(self, other: "Bitset") -> "Bitset":
        """Return ``self & other`` as a new bitset."""
        self._check_same_universe(other)
        return Bitset.from_mask(self._mask & other._mask)

    def difference(self, other: "Bitset") -> "Bitset":
        """Return ``self - other`` as a new bitset."""
        self._check_same_universe(other)
        return Bitset.from_mask(self._mask & ~other._mask)

    def issubset(self, other: "Bitset") -> bool:
        """``self ⊆ other``."""
        self._check_same_universe(other)
        return bool((~self._mask | other._mask).all())

    def isdisjoint(self, other: "Bitset") -> bool:
        """``self ∩ other == ∅``."""
        self._check_same_universe(other)
        return not bool((self._mask & other._mask).any())

    # -- conversions ---------------------------------------------------------
    def indices(self) -> np.ndarray:
        """Members as a sorted ``intp`` index array."""
        return np.flatnonzero(self._mask)

    def to_set(self) -> set[int]:
        """Members as a Python ``set`` (for small sets / tests)."""
        return set(self.indices().tolist())

    def copy(self) -> "Bitset":
        """Deep copy."""
        return Bitset.from_mask(self._mask)
