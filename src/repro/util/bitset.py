"""A NumPy-backed fixed-universe bitset over packed uint64 words.

Vertex subsets over a fixed universe ``{0, …, n-1}`` appear everywhere in
the algorithms (marked sets, independent sets, removed vertices).  Python
``set`` objects are flexible but slow and memory-hungry at scale; this
bitset packs membership into 64-bit words — 8× denser than the previous
bool-byte array — so the set algebra (union, intersection, difference,
subset/disjointness tests) runs word-parallel, 64 members per machine
operation, and cardinality is a vectorised popcount
(:func:`numpy.bitwise_count` where available, ``unpackbits`` otherwise).

Semantics are unchanged from the bool-mask implementation: the same
constructors, the same membership/iteration/index-extraction behaviour,
``mask`` still yields the boolean view of the set (now materialised from
the packed words on demand).  ``tests/util/test_bitset.py`` pins the API
and the property tests pin packed-vs-bool-mask equivalence.

Only the operations the algorithms need are implemented; the class is
deliberately not a full :class:`collections.abc.MutableSet` to keep the hot
paths free of abstraction overhead (see the HPC guide's advice on avoiding
needless copies and Python-level loops).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["Bitset"]

_ONE = np.uint64(1)
_SIX3 = np.uint64(63)

#: numpy ≥ 2.0 ships a hardware popcount ufunc; older versions fall back
#: to byte unpacking (same integers, more memory traffic).
_bitwise_count = getattr(np, "bitwise_count", None)


def _popcount(words: np.ndarray) -> int:
    if _bitwise_count is not None:
        return int(_bitwise_count(words).sum())
    return int(np.unpackbits(words.view(np.uint8)).sum())


def _as_index_array(members: Iterable[int] | np.ndarray) -> np.ndarray:
    return np.asarray(
        list(members) if not isinstance(members, np.ndarray) else members,
        dtype=np.intp,
    )


class Bitset:
    """A subset of ``{0, …, universe-1}`` packed into uint64 words.

    Parameters
    ----------
    universe:
        Size of the ground set.
    members:
        Optional initial members (iterable of ints or an index array).

    Examples
    --------
    >>> b = Bitset(8, [1, 3, 5])
    >>> 3 in b, 4 in b
    (True, False)
    >>> sorted(b)
    [1, 3, 5]
    >>> len(b)
    3
    """

    __slots__ = ("_words", "_n")

    def __init__(self, universe: int, members: Iterable[int] | None = None):
        if universe < 0:
            raise ValueError(f"universe size must be non-negative: {universe}")
        self._n = int(universe)
        self._words = np.zeros((self._n + 63) >> 6, dtype=np.uint64)
        if members is not None:
            idx = _as_index_array(members)
            if idx.size:
                if idx.min() < 0 or idx.max() >= universe:
                    raise IndexError("member outside universe")
                np.bitwise_or.at(
                    self._words, idx >> 6, _ONE << (idx & 63).astype(np.uint64)
                )

    # -- constructors -----------------------------------------------------
    @classmethod
    def _from_words(cls, words: np.ndarray, universe: int) -> "Bitset":
        """Wrap packed words (not copied; tail bits must be clear)."""
        b = cls.__new__(cls)
        b._words = words
        b._n = universe
        return b

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "Bitset":
        """Build from a boolean membership array (packed, not aliased)."""
        m = np.asarray(mask, dtype=bool)
        b = cls(int(m.size))
        if m.size:
            packed = np.packbits(m, bitorder="little")
            target = b._words.view(np.uint8)
            target[: packed.size] = packed
        return b

    @classmethod
    def full(cls, universe: int) -> "Bitset":
        """The complete set ``{0, …, universe-1}``."""
        b = cls(universe)
        b._words[:] = ~np.uint64(0)
        tail = universe & 63
        if b._words.size and tail:
            b._words[-1] = (_ONE << np.uint64(tail)) - _ONE
        return b

    # -- basic protocol ----------------------------------------------------
    @property
    def universe(self) -> int:
        """Size of the ground set."""
        return self._n

    @property
    def mask(self) -> np.ndarray:
        """Membership as a read-only boolean array (unpacked on demand)."""
        if self._n == 0:
            out = np.zeros(0, dtype=bool)
        else:
            out = np.unpackbits(
                self._words.view(np.uint8), count=self._n, bitorder="little"
            ).astype(bool)
        out.flags.writeable = False
        return out

    def __contains__(self, v: int) -> bool:
        return 0 <= v < self._n and bool(
            (int(self._words[v >> 6]) >> (v & 63)) & 1
        )

    def __len__(self) -> int:
        return _popcount(self._words)

    def __iter__(self) -> Iterator[int]:
        return iter(self.indices().tolist())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitset):
            return NotImplemented
        return self._n == other._n and bool(
            (self._words == other._words).all()
        )

    def __hash__(self):  # pragma: no cover - mutable container
        raise TypeError("Bitset is unhashable (mutable)")

    def __repr__(self) -> str:
        n = len(self)
        preview = self.indices()[:8].tolist()
        suffix = ", …" if n > 8 else ""
        return f"Bitset(universe={self.universe}, size={n}, members={preview}{suffix})"

    # -- mutation ----------------------------------------------------------
    def add(self, v: int) -> None:
        """Insert one element."""
        if not 0 <= v < self._n:
            raise IndexError("member outside universe")
        self._words[v >> 6] |= _ONE << np.uint64(v & 63)

    def discard(self, v: int) -> None:
        """Remove one element if present."""
        if 0 <= v < self._n:
            self._words[v >> 6] &= ~(_ONE << np.uint64(v & 63))

    def update(self, members: Iterable[int] | np.ndarray) -> None:
        """Bulk insert (vectorised scatter into the packed words)."""
        idx = _as_index_array(members)
        if idx.size:
            if idx.min() < 0 or idx.max() >= self._n:
                raise IndexError("member outside universe")
            np.bitwise_or.at(
                self._words, idx >> 6, _ONE << (idx & 63).astype(np.uint64)
            )

    def difference_update(self, members: Iterable[int] | np.ndarray) -> None:
        """Bulk remove (vectorised scatter into the packed words)."""
        idx = _as_index_array(members)
        if idx.size:
            if idx.min() < 0 or idx.max() >= self._n:
                raise IndexError("member outside universe")
            np.bitwise_and.at(
                self._words, idx >> 6, ~(_ONE << (idx & 63).astype(np.uint64))
            )

    # -- set algebra ---------------------------------------------------------
    def _check_same_universe(self, other: "Bitset") -> None:
        if self._n != other._n:
            raise ValueError(f"universe mismatch: {self._n} vs {other._n}")

    def union(self, other: "Bitset") -> "Bitset":
        """Return ``self | other`` as a new bitset (word-parallel)."""
        self._check_same_universe(other)
        return Bitset._from_words(self._words | other._words, self._n)

    def intersection(self, other: "Bitset") -> "Bitset":
        """Return ``self & other`` as a new bitset (word-parallel)."""
        self._check_same_universe(other)
        return Bitset._from_words(self._words & other._words, self._n)

    def difference(self, other: "Bitset") -> "Bitset":
        """Return ``self - other`` as a new bitset (word-parallel and-not)."""
        self._check_same_universe(other)
        return Bitset._from_words(self._words & ~other._words, self._n)

    def issubset(self, other: "Bitset") -> bool:
        """``self ⊆ other``."""
        self._check_same_universe(other)
        return not bool(np.any(self._words & ~other._words))

    def isdisjoint(self, other: "Bitset") -> bool:
        """``self ∩ other == ∅``."""
        self._check_same_universe(other)
        return not bool(np.any(self._words & other._words))

    # -- conversions ---------------------------------------------------------
    def indices(self) -> np.ndarray:
        """Members as a sorted ``intp`` index array (bit extraction)."""
        if self._n == 0:
            return np.empty(0, dtype=np.intp)
        return np.flatnonzero(
            np.unpackbits(
                self._words.view(np.uint8), count=self._n, bitorder="little"
            )
        )

    def to_set(self) -> set[int]:
        """Members as a Python ``set`` (for small sets / tests)."""
        return set(self.indices().tolist())

    def copy(self) -> "Bitset":
        """Deep copy."""
        return Bitset._from_words(self._words.copy(), self._n)
