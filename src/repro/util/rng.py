"""Deterministic random-number-generator plumbing.

Every stochastic component in :mod:`repro` accepts a ``seed`` argument that
may be ``None`` (non-deterministic), an integer, a
:class:`numpy.random.SeedSequence`, or an existing
:class:`numpy.random.Generator`.  The helpers here normalise those inputs and
derive statistically independent child generators, so a single top-level seed
reproduces an entire experiment — including all parallel rounds — exactly.

The design follows NumPy's recommended practice: never reuse a generator
across conceptually independent streams, always *spawn* children from a
:class:`~numpy.random.SeedSequence`.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Union

import numpy as np

#: Types accepted anywhere a seed is expected.  Sequences may mix ints and
#: strings; strings are hashed to stable integers (useful for labelling
#: derived streams, e.g. ``(seed, "instances")``).
SeedLike = Union[None, int, str, Sequence, np.random.SeedSequence, np.random.Generator]

__all__ = ["SeedLike", "as_generator", "spawn_seeds", "spawn_generators", "stream"]


def _entropy(seed) -> "int | list[int] | None":
    """Normalise ints/strings/sequences into SeedSequence-compatible entropy.

    Strings are hashed with SHA-256 (stable across processes and Python
    versions, unlike ``hash()``).
    """
    import hashlib

    if seed is None or isinstance(seed, int):
        return seed
    if isinstance(seed, str):
        return int.from_bytes(hashlib.sha256(seed.encode()).digest()[:8], "big")
    if isinstance(seed, (tuple, list)):
        out = []
        for item in seed:
            e = _entropy(item)
            if e is None:
                raise ValueError("None not allowed inside a composite seed")
            out.extend(e if isinstance(e, list) else [e])
        return out
    raise TypeError(f"unsupported seed component: {type(seed).__name__}")


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int``, a sequence of ints, a
        :class:`~numpy.random.SeedSequence`, or an existing ``Generator``
        (returned unchanged — the caller then shares state with us, which is
        the intended behaviour for nested algorithmic components).

    Returns
    -------
    numpy.random.Generator
        A PCG64-backed generator.

    Examples
    --------
    >>> g = as_generator(1234)
    >>> h = as_generator(1234)
    >>> bool((g.random(4) == h.random(4)).all())
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(_entropy(seed))


def spawn_seeds(seed: SeedLike, n: int) -> list[np.random.SeedSequence]:
    """Derive *n* independent :class:`~numpy.random.SeedSequence` children.

    If *seed* is already a ``Generator`` we derive children from fresh
    entropy drawn from it (keeping determinism when the generator itself is
    seeded).

    Parameters
    ----------
    seed:
        Anything accepted by :func:`as_generator`.
    n:
        Number of children to derive.  Must be non-negative.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of seeds: {n}")
    if isinstance(seed, np.random.SeedSequence):
        return list(seed.spawn(n))
    if isinstance(seed, np.random.Generator):
        # Derive a deterministic child entropy stream from the generator.
        entropy = seed.integers(0, 2**63 - 1, size=4).tolist()
        return list(np.random.SeedSequence(entropy).spawn(n))
    return list(np.random.SeedSequence(_entropy(seed)).spawn(n))


def spawn_generators(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive *n* independent generators from *seed*.

    Convenience wrapper combining :func:`spawn_seeds` and
    :func:`as_generator`.
    """
    return [np.random.default_rng(s) for s in spawn_seeds(seed, n)]


def stream(seed: SeedLike) -> Iterator[np.random.Generator]:
    """Yield an unbounded deterministic stream of independent generators.

    Useful for iterative algorithms whose round count is not known in
    advance (e.g. the while loops of BL and SBL): round *i* always receives
    the same generator for a given top-level seed regardless of how many
    rounds end up executing.
    """
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        entropy = seed.integers(0, 2**63 - 1, size=4).tolist()
        root = np.random.SeedSequence(entropy)
    else:
        root = np.random.SeedSequence(_entropy(seed))
    while True:
        (child,) = root.spawn(1)
        yield np.random.default_rng(child)
