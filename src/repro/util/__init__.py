"""Shared utilities for the :mod:`repro` package.

This package contains small, dependency-light helpers that every other
subsystem builds on:

* :mod:`repro.util.rng` — deterministic random-number-generator plumbing
  (seed trees, generator coercion).
* :mod:`repro.util.itlog` — iterated logarithms ``log``, ``log^(2)``,
  ``log^(3)`` and related closed forms used throughout the paper's
  parameter choices.
* :mod:`repro.util.bitset` — a NumPy-backed fixed-universe bitset used to
  represent vertex subsets compactly.
"""

from repro.util.bitset import Bitset
from repro.util.itlog import (
    ilog,
    log2_ceil,
    log_base,
    loglog,
    logloglog,
)
from repro.util.rng import as_generator, spawn_generators, spawn_seeds

__all__ = [
    "Bitset",
    "as_generator",
    "spawn_generators",
    "spawn_seeds",
    "ilog",
    "log2_ceil",
    "log_base",
    "loglog",
    "logloglog",
]
