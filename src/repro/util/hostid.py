"""Normalized machine identity for perf artifacts.

Benchmark baselines (``BENCH_*.json``) and kernel-dispatch calibrations
(``KERNEL_CALIBRATION.json``) both record wall-clock measurements that are
only meaningful on the machine that produced them.  Every such file stamps
:func:`machine_identity` into its provenance, and every consumer —
``scripts/bench_gate.py`` for the baselines,
:mod:`repro.kernels.costmodel` for the calibration — compares the stamp
against the current machine and refuses (gate) or ignores (cost model)
cross-machine data.

Lives in ``repro.util`` so both the installed package and the repo
scripts share one definition (``scripts/bench_smoke.py`` re-exports it
for its historical importers).
"""

from __future__ import annotations

import os
import platform
import re

__all__ = ["machine_identity"]


def machine_identity() -> str:
    """A normalized id for *this* machine, stable across runs on it.

    ``system-arch-cpumodel-Nc`` (lowercased, punctuation collapsed to
    ``-``).  Benchmark medians are only comparable between runs that share
    this id — ``bench_gate`` refuses cross-machine comparisons by default,
    and the kernel cost model ignores calibrations from other machines.
    """
    cpu = None
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    cpu = line.split(":", 1)[1].strip()
                    break
    except OSError:
        cpu = None
    cpu = cpu or platform.processor() or "unknown-cpu"
    cpu = re.sub(r"[^a-z0-9]+", "-", cpu.lower()).strip("-")
    return (
        f"{platform.system().lower()}-{platform.machine().lower()}"
        f"-{cpu}-{os.cpu_count()}c"
    )
