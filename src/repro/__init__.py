"""repro — parallel maximal independent sets of hypergraphs.

A production-grade reproduction of

    Bercea, Goyal, Harris, Srinivasan,
    "On Computing Maximal Independent Sets of Hypergraphs in Parallel",
    SPAA 2014 (arXiv:1405.1133).

Quickstart
----------
>>> from repro import Hypergraph, sbl
>>> H = Hypergraph(6, [(0, 1, 2), (2, 3, 4), (4, 5, 0)])
>>> result = sbl(H, seed=7)
>>> result.verify(H)        # raises if not a maximal independent set
>>> sorted(result.independent_set.tolist())  # doctest: +SKIP
[0, 1, 3, 4]

Package map
-----------
* :mod:`repro.hypergraph` — the hypergraph substrate (structure, update
  ops, Kelsen degree structures, validators, IO).
* :mod:`repro.core` — the algorithms: SBL, BL, KUW, greedy,
  permutation-BL, Luby, linear-hypergraph MIS.
* :mod:`repro.pram` — EREW PRAM cost model and execution backends.
* :mod:`repro.generators` — random / structured / linear instance
  generators.
* :mod:`repro.theory` — the paper's closed-form parameters, recurrences,
  concentration bounds, and inequality checks.
* :mod:`repro.analysis` — experiment runners and table rendering behind
  the ``benchmarks/`` suite.
"""

from repro.core import (
    MISResult,
    RoundRecord,
    SBLFailure,
    beame_luby,
    greedy_mis,
    is_linear,
    karp_upfal_wigderson,
    linear_hypergraph_mis,
    luby_mis,
    permutation_bl,
    sbl,
)
from repro.hypergraph import (
    Hypergraph,
    check_mis,
    is_independent,
    is_maximal_independent,
)
from repro.pram import CountingMachine, NullMachine, ProcessBackend, SerialBackend

__version__ = "1.0.0"

__all__ = [
    "Hypergraph",
    "sbl",
    "SBLFailure",
    "beame_luby",
    "karp_upfal_wigderson",
    "greedy_mis",
    "permutation_bl",
    "luby_mis",
    "linear_hypergraph_mis",
    "is_linear",
    "MISResult",
    "RoundRecord",
    "check_mis",
    "is_independent",
    "is_maximal_independent",
    "CountingMachine",
    "NullMachine",
    "SerialBackend",
    "ProcessBackend",
    "__version__",
]
