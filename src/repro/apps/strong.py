"""Strong independent sets (no two chosen vertices share any edge).

A *strong* independent set forbids even two co-members of an edge — it is
exactly an independent set of the hypergraph's 2-section graph.  Strong
independence implies (ordinary) independence for dimension ≥ 2 but is far
more restrictive; it models exclusive-access variants of the scheduling
problems in :mod:`repro.apps.scheduling` ("no two jobs may share *any*
resource group").

Because the 2-section is a plain graph, the well-solved graph-MIS
machinery applies — Luby's algorithm gives ``O(log n)`` rounds — which is
precisely the contrast the paper's survey draws: the *strong* problem is
easy in parallel, the ordinary hypergraph MIS is the open one.
"""

from __future__ import annotations

import numpy as np

from repro.core.luby import luby_mis
from repro.core.result import MISResult
from repro.hypergraph.hypergraph import Hypergraph
from repro.util.rng import SeedLike

__all__ = ["is_strong_independent", "strong_independent_set", "two_section_hypergraph"]


def two_section_hypergraph(H: Hypergraph) -> Hypergraph:
    """The 2-section as a 2-uniform hypergraph over the same universe."""
    pairs = set()
    for e in H.edges:
        for i, u in enumerate(e):
            for v in e[i + 1 :]:
                pairs.add((u, v))
    return Hypergraph(H.universe, sorted(pairs), vertices=H.vertices)


def is_strong_independent(H: Hypergraph, members) -> bool:
    """No two members co-occur in any edge."""
    chosen = set(int(v) for v in members)
    for e in H.edges:
        if sum(v in chosen for v in e) >= 2:
            return False
    return True


def strong_independent_set(
    H: Hypergraph, seed: SeedLike = None, *, machine=None
) -> MISResult:
    """A maximal strong independent set via Luby on the 2-section.

    "Maximal" is with respect to strong independence: every outside active
    vertex shares an edge with a chosen one (or carries a singleton edge,
    whose vertex the 2-section leaves unconstrained — singleton edges
    constrain ordinary independence only, so they are ignored here).
    """
    G = two_section_hypergraph(H)
    res = luby_mis(G, seed, machine=machine)
    return MISResult(
        independent_set=res.independent_set,
        algorithm="strong",
        n=H.num_vertices,
        m=H.num_edges,
        rounds=res.rounds,
        machine=res.machine,
        meta={"two_section_edges": G.num_edges},
    )
