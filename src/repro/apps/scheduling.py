"""Resource-constrained batch scheduling on the conflict hypergraph.

Jobs demand units of shared finite resources.  A set of jobs is
*admissible* in one batch when no resource is oversubscribed; for a
resource of capacity ``c``, every ``(c+1)``-subset of its consumers is a
forbidden set — a hyperedge.  Then:

* a **maximal admissible batch** = a maximal independent set of the
  conflict hypergraph, and
* a **complete schedule** (every job runs exactly once) = a proper
  coloring of it, obtained by iterated MIS
  (:func:`repro.apps.coloring.color_by_mis`).

Edge sizes are ``capacity + 1 ≥ 2``, comfortably beyond the graph case —
the workload shape the paper's introduction motivates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.apps.coloring import color_by_mis
from repro.core.greedy import greedy_mis
from repro.core.result import MISResult
from repro.hypergraph.hypergraph import Hypergraph
from repro.util.rng import SeedLike

__all__ = ["Job", "Resource", "Schedule", "build_conflict_hypergraph", "plan_batches"]


@dataclass(frozen=True)
class Resource:
    """A shared resource with integer capacity per batch."""

    name: str
    capacity: int

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError(f"resource {self.name!r}: capacity must be >= 1")


@dataclass(frozen=True)
class Job:
    """A job naming the resources it holds for the duration of a batch."""

    name: str
    needs: tuple[str, ...] = ()


@dataclass
class Schedule:
    """A complete schedule: ``batches[t]`` lists the job indices of slot t."""

    batches: list[list[int]]
    job_names: list[str] = field(default_factory=list)

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    def slot_of(self, job_index: int) -> int:
        """The batch index a job runs in (raises if unscheduled)."""
        for t, batch in enumerate(self.batches):
            if job_index in batch:
                return t
        raise KeyError(f"job {job_index} is not scheduled")


def build_conflict_hypergraph(
    jobs: Sequence[Job],
    resources: Mapping[str, Resource] | Sequence[Resource],
    *,
    max_edges_per_resource: int = 100_000,
) -> Hypergraph:
    """The conflict hypergraph of a workload.

    Every resource whose consumer count exceeds its capacity contributes
    ``C(consumers, capacity+1)`` forbidden sets; a blow-up beyond
    *max_edges_per_resource* raises (shard the resource instead of
    enumerating astronomically many constraints).

    Raises
    ------
    ValueError
        On a job naming an unknown resource, or an over-budget resource.
    """
    if not isinstance(resources, Mapping):
        resources = {r.name: r for r in resources}
    consumers: dict[str, list[int]] = {name: [] for name in resources}
    for i, job in enumerate(jobs):
        for need in job.needs:
            if need not in resources:
                raise ValueError(f"job {job.name!r} needs unknown resource {need!r}")
            consumers[need].append(i)
    edges: list[tuple[int, ...]] = []
    import math

    for name, users in consumers.items():
        cap = resources[name].capacity
        k = len(users)
        if k <= cap:
            continue
        count = math.comb(k, cap + 1)
        if count > max_edges_per_resource:
            raise ValueError(
                f"resource {name!r}: {k} consumers at capacity {cap} would "
                f"generate {count} constraints (> {max_edges_per_resource}); "
                "shard the resource"
            )
        edges.extend(itertools.combinations(users, cap + 1))
    return Hypergraph(len(jobs), edges)


def plan_batches(
    jobs: Sequence[Job],
    resources: Mapping[str, Resource] | Sequence[Resource],
    seed: SeedLike = None,
    *,
    algorithm=greedy_mis,
    **algorithm_options,
) -> Schedule:
    """Schedule every job into the fewest-ish batches via iterated MIS.

    Each batch is a maximal admissible set, so no job could be moved into
    an earlier batch (the schedule is "greedy-optimal" per slot).
    """
    H = build_conflict_hypergraph(jobs, resources)
    coloring = color_by_mis(H, seed, algorithm=algorithm, **algorithm_options)
    batches = [cls.tolist() for cls in coloring.classes]
    return Schedule(batches=batches, job_names=[j.name for j in jobs])


def verify_schedule(
    schedule: Schedule,
    jobs: Sequence[Job],
    resources: Mapping[str, Resource] | Sequence[Resource],
) -> None:
    """Assert every batch respects every capacity and every job runs once.

    Raises ``AssertionError`` with a specific message otherwise.
    """
    if not isinstance(resources, Mapping):
        resources = {r.name: r for r in resources}
    seen: set[int] = set()
    for t, batch in enumerate(schedule.batches):
        usage: dict[str, int] = {}
        for i in batch:
            if i in seen:
                raise AssertionError(f"job {i} scheduled twice")
            seen.add(i)
            for need in jobs[i].needs:
                usage[need] = usage.get(need, 0) + 1
        for name, used in usage.items():
            cap = resources[name].capacity
            if used > cap:
                raise AssertionError(
                    f"batch {t}: resource {name!r} oversubscribed ({used} > {cap})"
                )
    if seen != set(range(len(jobs))):
        missing = sorted(set(range(len(jobs))) - seen)
        raise AssertionError(f"unscheduled jobs: {missing}")
