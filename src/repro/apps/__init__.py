"""Applications of the MIS primitive.

The introduction's motivation for fast parallel MIS is that it serves "as
a primitive in numerous applications"; this package implements two
classic ones end to end:

* :mod:`repro.apps.coloring` — proper (non-monochromatic) hypergraph
  coloring by iterated MIS extraction: each color class is an independent
  set, so no edge is ever monochromatic.
* :mod:`repro.apps.scheduling` — resource-constrained batch scheduling:
  jobs demanding shared finite resources induce a conflict hypergraph
  whose MISs are exactly the maximal admissible batches; iterating yields
  a full schedule (a coloring of the conflict hypergraph).
"""

from repro.apps.coloring import Coloring, color_by_mis, is_proper_coloring
from repro.apps.strong import (
    is_strong_independent,
    strong_independent_set,
    two_section_hypergraph,
)
from repro.apps.scheduling import (
    Job,
    Resource,
    Schedule,
    build_conflict_hypergraph,
    plan_batches,
)

__all__ = [
    "Coloring",
    "color_by_mis",
    "is_proper_coloring",
    "Job",
    "Resource",
    "Schedule",
    "build_conflict_hypergraph",
    "plan_batches",
    "is_strong_independent",
    "strong_independent_set",
    "two_section_hypergraph",
]
