"""Proper hypergraph coloring by iterated MIS.

A coloring of a hypergraph is *proper* when no edge (of size ≥ 2) is
monochromatic.  Since a color class that contains no complete edge is
exactly an independent set, repeatedly extracting a maximal independent
set and removing it yields a proper coloring:

1. run an MIS algorithm on the hypergraph restricted to the uncolored
   vertices (edges shrink as their colored vertices leave — but a *color
   class* must avoid complete edges of the **original** hypergraph, so the
   restriction keeps every original edge that still has all its vertices
   uncolored);
2. assign the next color to the returned set;
3. repeat until every vertex is colored.

Maximality of each extracted set gives the standard bound: the number of
colors is at most 1 plus the maximum *co-degree blocking* any vertex
experiences — and, on a PRAM, each extraction costs one MIS invocation,
which is exactly why the paper's question ("is hypergraph MIS in NC?")
matters for parallel coloring.

Size-1 edges make proper coloring impossible for their vertex (every
class containing it is "monochromatic" on that edge); following the
usual convention such vertices are rejected with ``ValueError``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.greedy import greedy_mis
from repro.core.result import MISResult
from repro.hypergraph.hypergraph import Hypergraph
from repro.util.rng import SeedLike, spawn_seeds

__all__ = ["Coloring", "color_by_mis", "is_proper_coloring"]

MISAlgorithm = Callable[..., MISResult]


@dataclass
class Coloring:
    """A vertex coloring: ``colors[v]`` is the color of vertex v (−1 = uncolored).

    Attributes
    ----------
    colors:
        Array over the universe.
    num_colors:
        Number of classes used.
    classes:
        Per-color sorted vertex arrays.
    """

    colors: np.ndarray
    num_colors: int
    classes: list[np.ndarray] = field(default_factory=list)

    def class_of(self, color: int) -> np.ndarray:
        """The vertices of one color class."""
        if not 0 <= color < self.num_colors:
            raise IndexError(f"color {color} out of range [0, {self.num_colors})")
        return self.classes[color]


def is_proper_coloring(H: Hypergraph, colors: np.ndarray) -> bool:
    """No edge of size ≥ 2 is monochromatic, and all active vertices colored."""
    if colors.shape != (H.universe,):
        raise ValueError("colors must cover the universe")
    if (colors[H.vertices] < 0).any():
        return False
    for e in H.edges:
        if len(e) < 2:
            continue
        first = colors[e[0]]
        if all(colors[v] == first for v in e[1:]):
            return False
    return True


def color_by_mis(
    H: Hypergraph,
    seed: SeedLike = None,
    *,
    algorithm: MISAlgorithm = greedy_mis,
    max_colors: int | None = None,
    **algorithm_options,
) -> Coloring:
    """Color *H* properly by iterated MIS extraction.

    Parameters
    ----------
    H:
        Input hypergraph; must have no size-1 edges.
    seed:
        One child seed per extraction round.
    algorithm:
        Any :mod:`repro.core` MIS algorithm (default: greedy — coloring
        cares about class count, not parallel depth; pass ``beame_luby``
        etc. to study the parallel version).
    max_colors:
        Abort guard (defaults to ``n + 1``).
    algorithm_options:
        Forwarded to the algorithm (e.g. ``p_override`` for SBL).

    Returns
    -------
    Coloring
        Proper by construction; verified by the caller via
        :func:`is_proper_coloring` if desired.
    """
    if any(len(e) == 1 for e in H.edges):
        raise ValueError(
            "hypergraph has size-1 edges; no proper coloring exists for them"
        )
    cap = max_colors if max_colors is not None else H.num_vertices + 1
    colors = np.full(H.universe, -1, dtype=np.intp)
    classes: list[np.ndarray] = []
    W = H
    seeds = iter(spawn_seeds(seed, cap))
    color = 0
    while W.num_vertices > 0:
        if color >= cap:
            raise RuntimeError(f"exceeded {cap} colors — aborting")
        res = algorithm(W, next(seeds), **algorithm_options)
        chosen = res.independent_set
        if chosen.size == 0:
            raise RuntimeError("MIS algorithm returned an empty set on a non-empty hypergraph")
        colors[chosen] = color
        classes.append(chosen.copy())
        # Remove the colored vertices; keep only edges entirely uncolored
        # (an edge with a colored vertex can never become monochromatic in
        # a *future* class).
        remaining = np.setdiff1d(W.vertices, chosen, assume_unique=False)
        W = W.induced(remaining)
        color += 1
    return Coloring(colors=colors, num_colors=color, classes=classes)
