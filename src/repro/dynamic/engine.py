"""Incremental MIS maintenance: localize, repair, splice, certify.

The engine keeps ``(H_t, I_t)`` — the current hypergraph and a maximal
independent set of it — and applies update batches through
:func:`repro.hypergraph.updates.apply_updates`.  Per batch it either
**repairs** (re-solve only the affected components and splice the patch
into the frozen remainder) or **recomputes** from scratch, routed by the
measured crossover in :mod:`repro.dynamic.costmodel`.

Why repair is exact, not approximate
------------------------------------
All solving — initial, repair, recompute — is greedy along one global
*priority order*: a permutation of the universe derived from the engine
seed.  Greedy along a fixed priority is component-decomposable (a
vertex's accept/reject decision depends only on earlier-priority vertices
of its own component), so the maintained invariant

    ``I_t  ==  greedy_mis(H_t, order=priority)``

survives repair *exactly*: components of ``H_t`` containing no dirty
vertex have identical vertex and edge sets as in ``H_{t-1}`` (an incident
edge that changed would make its endpoints dirty), hence the frozen
restriction of ``I_{t-1}`` is already the greedy answer there, and the
re-solved affected components supply the rest.  Repair therefore returns
**bit-identical** output to recompute-from-scratch — the property the
stream fuzzer pins per seed across kernel backends.  The greedy scan
itself rides :func:`repro.kernels.dispatch.select_backend` for its
adjacency layout, so repairs use the dense kernels whenever the patch
shape qualifies.

Every update still ends in an explicit certificate pass
(:func:`repro.hypergraph.validate.check_mis` on the *updated* hypergraph)
unless ``validate=False`` — trust the theorem, verify the code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

from repro.core.greedy import greedy_mis
from repro.core.result import RoundRecord
from repro.dynamic.costmodel import decide_strategy
from repro.hypergraph.components import component_labels
from repro.hypergraph.hypergraph import EdgeLike, Hypergraph
from repro.hypergraph.updates import UpdateResult, apply_updates
from repro.hypergraph.validate import check_mis
from repro.obs import metrics as obs_metrics
from repro.obs.tracer import NullTracer, Tracer, current_tracer
from repro.util.rng import SeedLike, as_generator

__all__ = ["DynamicMIS", "UpdateOutcome"]

_STRATEGIES = ("auto", "repair", "recompute")


def _local_labels(cand: np.ndarray, sub_store) -> np.ndarray:
    """Connected-component labels of the *compacted* candidate region.

    ``cand`` (sorted vertex ids) and ``sub_store`` (the edges lying inside
    it) are remapped to ``0..k-1`` before the bipartite CC pass, so the
    cost is proportional to the candidate region — not the instance.
    Label values are arbitrary but distinct per component.
    """
    k = cand.size
    ms = sub_store.num_edges
    if not ms:
        return np.arange(k, dtype=np.intp)
    rows = np.searchsorted(cand, sub_store.indices)
    cols = k + np.repeat(np.arange(ms, dtype=np.intp), sub_store.sizes())
    n_nodes = k + ms
    graph = sp.coo_matrix(
        (np.ones(rows.size, dtype=np.int8), (rows, cols)), shape=(n_nodes, n_nodes)
    )
    _, raw = csgraph.connected_components(graph, directed=False)
    return raw[:k].astype(np.intp)


@dataclass(frozen=True)
class UpdateOutcome:
    """What one :meth:`DynamicMIS.apply` did, and the state it produced."""

    update: UpdateResult
    strategy: str  # "repair" | "recompute" | "noop"
    reason: str
    mis: np.ndarray = field(compare=False)
    dirty_fraction: float
    patch_vertices: int
    frozen_vertices: int
    certified: bool
    chain: str
    rounds: tuple[RoundRecord, ...] = ()

    @property
    def mis_size(self) -> int:
        return int(self.mis.size)


class DynamicMIS:
    """Maintain an MIS of a hypergraph under streamed edge updates.

    Parameters
    ----------
    H:
        Initial hypergraph.
    seed:
        Derives the global priority permutation (and nothing else) —
        the whole stream is deterministic in ``(H, seed, updates)``.
    strategy:
        ``"auto"`` (dispatch via the crossover model), or force
        ``"repair"`` / ``"recompute"`` — the benchmark harness races the
        forced modes against each other.
    validate:
        Run the :func:`check_mis` certificate after every update
        (default).  Disable only when an external pass certifies.
    """

    def __init__(
        self,
        H: Hypergraph,
        seed: SeedLike = 0,
        *,
        strategy: str = "auto",
        validate: bool = True,
    ):
        if strategy not in _STRATEGIES:
            raise ValueError(f"strategy must be one of {_STRATEGIES}: {strategy!r}")
        self._strategy = strategy
        self._validate = validate
        self._seed = seed
        perm = as_generator((seed, "dynamic-priority")).permutation(H.universe)
        rank = np.empty(H.universe, dtype=np.intp)
        rank[perm] = np.arange(H.universe, dtype=np.intp)
        self._rank = rank
        self._H = H
        self._chain = H.content_hash()
        self._mis = greedy_mis(H, order=self._priority_order(H.vertices)).independent_set
        # Component labels are maintained incrementally across updates so
        # repair localization never pays a full-instance labeling pass:
        # an update can only change the components that contain dirty
        # vertices, so those get relabeled locally (fresh ids) and the
        # rest keep their labels.  Recompute refreshes from scratch.
        self._labels = component_labels(H)
        self._next_label = int(self._labels.max()) + 1 if self._labels.size else 0
        self._steps = 0
        if validate:
            check_mis(H, self._mis)

    # ------------------------------------------------------------------
    # state accessors
    # ------------------------------------------------------------------
    @property
    def hypergraph(self) -> Hypergraph:
        return self._H

    @property
    def independent_set(self) -> np.ndarray:
        view = self._mis.view()
        view.flags.writeable = False
        return view

    @property
    def chain(self) -> str:
        """Hash-chain value of the current state (see :func:`chain_hash`)."""
        return self._chain

    @property
    def steps(self) -> int:
        """Number of update batches applied."""
        return self._steps

    def certify(self) -> bool:
        """Re-run the certificate on the current state (raises on violation)."""
        check_mis(self._H, self._mis)
        return True

    def recompute_reference(self) -> np.ndarray:
        """The pinned recompute: full greedy-by-priority on the current state.

        The engine's invariant says this always equals
        :attr:`independent_set` bit for bit — the stream fuzzer's
        metamorphic oracle.
        """
        return greedy_mis(
            self._H, order=self._priority_order(self._H.vertices)
        ).independent_set

    def _priority_order(self, vertices: np.ndarray) -> np.ndarray:
        v = np.asarray(vertices, dtype=np.intp)
        return v[np.argsort(self._rank[v])]

    # ------------------------------------------------------------------
    # the update step
    # ------------------------------------------------------------------
    def apply(
        self,
        add_edges: Iterable[EdgeLike] = (),
        remove_edges: Iterable[EdgeLike] = (),
        *,
        strict: bool = True,
        trace: bool = False,
        tracer: Tracer | NullTracer | None = None,
    ) -> UpdateOutcome:
        """Apply one update batch and restore the MIS invariant.

        With ``trace=True`` the inner solve records its
        :class:`RoundRecord`\\ s on the outcome (the streamed analogue of
        the one-shot solvers' ``keep_rounds``).  Raises the certificate
        violation if validation fails — the engine state is then **not**
        advanced.
        """
        trc = tracer if tracer is not None else current_tracer()
        H_old = self._H
        with trc.span(
            "dynamic/update",
            step=self._steps,
            n=H_old.num_vertices,
            m=H_old.num_edges,
        ) as span:
            upd = apply_updates(
                H_old,
                add_edges,
                remove_edges,
                parent_chain=self._chain,
                strict=strict,
            )
            H_new = upd.hypergraph
            obs_metrics.inc("dynamic/updates")
            n_active = H_new.num_vertices
            dirty_fraction = (
                upd.dirty_vertices.size / n_active if n_active else 0.0
            )
            obs_metrics.set_gauge("dynamic/dirty_fraction", dirty_fraction)
            delta_fraction = upd.delta_fraction()

            rounds: tuple[RoundRecord, ...] = ()
            new_labels, next_label = self._labels, self._next_label
            if upd.is_noop:
                strategy, reason = "noop", "empty structural diff"
                new_mis = self._mis
                patch_vertices = 0
                frozen = int(self._mis.size)
            else:
                decision = decide_strategy(
                    delta_fraction, H_new.dimension, H_new.universe
                )
                if self._strategy == "auto":
                    strategy, reason, mode = (
                        decision.strategy,
                        decision.reason,
                        decision.mode,
                    )
                else:
                    strategy, mode = self._strategy, "forced"
                    reason = f"forced {strategy} (engine strategy override)"
                obs_metrics.inc(
                    f"dynamic/decision/{decision.bucket}:{decision.band}/{strategy}"
                )
                obs_metrics.inc(f"dynamic/decision_mode/{mode}")
                if strategy == "repair":
                    (
                        new_mis,
                        patch_vertices,
                        frozen,
                        rounds,
                        new_labels,
                        next_label,
                    ) = self._repair(H_new, upd, trc, trace)
                else:
                    (
                        new_mis,
                        patch_vertices,
                        frozen,
                        rounds,
                        new_labels,
                        next_label,
                    ) = self._recompute(H_new, trc, trace)

            certified = False
            if self._validate:
                check_mis(H_new, new_mis)
                certified = True

            self._H = H_new
            self._mis = new_mis
            self._labels = new_labels
            self._next_label = next_label
            self._chain = upd.chain
            self._steps += 1
            if trc.enabled:
                span.set(
                    strategy=strategy,
                    mis_size=int(new_mis.size),
                    changed_edges=upd.num_changed,
                    delta_fraction=round(delta_fraction, 6),
                    dirty_fraction=round(dirty_fraction, 6),
                )
        return UpdateOutcome(
            update=upd,
            strategy=strategy,
            reason=reason,
            mis=new_mis,
            dirty_fraction=dirty_fraction,
            patch_vertices=patch_vertices,
            frozen_vertices=frozen,
            certified=certified,
            chain=upd.chain,
            rounds=rounds,
        )

    def _repair(
        self,
        H_new: Hypergraph,
        upd: UpdateResult,
        trc: Tracer | NullTracer,
        trace: bool,
    ) -> tuple[np.ndarray, int, int, tuple[RoundRecord, ...], np.ndarray, int]:
        """Localize → re-solve affected components → splice.

        Localization is two-stage, and both stages are local.  The cached
        labels of the *previous* state bound the blast radius: any path
        from a dirty vertex in ``H_new`` crosses either an added edge
        (whose endpoints are all dirty) or a surviving old edge (which
        stays inside its old component), so the new components containing
        dirty vertices live inside the union of old components containing
        dirty vertices plus the newly activated vertices.  Running CC on
        that candidate region alone then yields the exact affected
        components of ``H_new``; candidate pieces that split away from
        every dirty vertex keep their old incident edges untouched and are
        frozen along with the rest.
        """
        with trc.span("dynamic/repair", changed=upd.num_changed) as span:
            universe = H_new.universe
            dirty = upd.dirty_vertices
            old_dirty = np.unique(self._labels[dirty])
            old_dirty = old_dirty[old_dirty >= 0]
            cand_mask = (
                np.isin(self._labels, old_dirty)
                if old_dirty.size
                else np.zeros(universe, dtype=bool)
            )
            cand_mask[dirty] = True
            cand = np.flatnonzero(cand_mask)
            store = H_new.store
            if store.num_edges:
                first = store.indices[store.indptr[:-1]]
                cand_store = store.select(cand_mask[first])
            else:
                cand_store = store
            local = _local_labels(cand, cand_store)
            dirty_local = np.unique(local[np.searchsorted(cand, dirty)])
            sub_vertices = cand[np.isin(local, dirty_local)]
            affected = np.zeros(universe, dtype=bool)
            affected[sub_vertices] = True
            if cand_store.num_edges:
                sub_first = cand_store.indices[cand_store.indptr[:-1]]
                sub_store = cand_store.select(affected[sub_first])
            else:
                sub_store = cand_store
            sub_H = Hypergraph._from_arrays(universe, sub_store, sub_vertices)
            result = greedy_mis(
                sub_H,
                order=self._priority_order(sub_vertices),
                trace=trace,
                tracer=trc,
            )
            frozen = self._mis[~affected[self._mis]]
            merged = np.union1d(frozen, result.independent_set)
            # Candidate vertices get fresh label ids (unique vs. every id
            # handed out so far); the untouched remainder keeps its own.
            new_labels = self._labels.copy()
            new_labels[cand] = self._next_label + local
            next_label = self._next_label + (int(local.max()) + 1 if cand.size else 0)
            obs_metrics.inc("dynamic/repairs")
            obs_metrics.inc("dynamic/patch_vertices", sub_H.num_vertices)
            if trc.enabled:
                span.set(
                    patch_n=sub_H.num_vertices,
                    patch_m=sub_H.num_edges,
                    frozen=int(frozen.size),
                    components=int(dirty_local.size),
                )
        return (
            merged,
            sub_H.num_vertices,
            int(frozen.size),
            tuple(result.rounds),
            new_labels,
            next_label,
        )

    def _recompute(
        self, H_new: Hypergraph, trc: Tracer | NullTracer, trace: bool
    ) -> tuple[np.ndarray, int, int, tuple[RoundRecord, ...], np.ndarray, int]:
        with trc.span("dynamic/recompute", n=H_new.num_vertices, m=H_new.num_edges):
            result = greedy_mis(
                H_new,
                order=self._priority_order(H_new.vertices),
                trace=trace,
                tracer=trc,
            )
            obs_metrics.inc("dynamic/recomputes")
            new_labels = component_labels(H_new)
            next_label = int(new_labels.max()) + 1 if new_labels.size else 0
        return (
            result.independent_set,
            H_new.num_vertices,
            0,
            tuple(result.rounds),
            new_labels,
            next_label,
        )
