"""Incremental MIS maintenance under edge streams.

The one-shot solvers in :mod:`repro.core` answer "what is an MIS of H?";
this package answers "H just changed — what is an MIS *now*?" without
paying for a full re-solve when the change is small:

* :mod:`repro.dynamic.engine` — :class:`DynamicMIS`, the repair engine:
  localize the update's dirty region to whole connected components,
  re-solve only those (greedy along a global priority order, so the
  repaired answer is *bit-identical* to recompute-from-scratch), splice,
  and certify against the updated hypergraph.
* :mod:`repro.dynamic.costmodel` — the repair-vs-recompute dispatcher:
  a measured per-shape-bucket crossover delta-fraction
  (``DYNAMIC_CALIBRATION.json``, machine-gated) with a static threshold
  fallback, mirroring :mod:`repro.kernels.costmodel`.

The batch-update primitive itself —
:func:`repro.hypergraph.updates.apply_updates` with its exact structural
diff and content-hash chaining — lives on the hypergraph layer so
non-dynamic callers (caches, the service) can reuse it.
"""

from repro.dynamic.costmodel import (
    DEFAULT_CALIBRATION_PATH,
    ENV_CALIBRATION,
    STATIC_CROSSOVER_FRACTION,
    CrossoverCalibration,
    DynamicCalibrationError,
    StrategyDecision,
    calibration_path,
    decide_strategy,
    delta_band,
    invalidate_calibration_cache,
    load_calibration,
    usable_calibration,
)
from repro.dynamic.engine import DynamicMIS, UpdateOutcome

__all__ = [
    "DynamicMIS",
    "UpdateOutcome",
    "StrategyDecision",
    "decide_strategy",
    "delta_band",
    "CrossoverCalibration",
    "DynamicCalibrationError",
    "load_calibration",
    "usable_calibration",
    "calibration_path",
    "invalidate_calibration_cache",
    "DEFAULT_CALIBRATION_PATH",
    "ENV_CALIBRATION",
    "STATIC_CROSSOVER_FRACTION",
]
