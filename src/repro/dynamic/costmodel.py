"""Measured repair-vs-recompute crossover for the dynamic engine.

Small update batches should be repaired in place (cost scales with the
affected region); large ones should recompute from scratch (repair's
localization overhead — one component labeling plus the splice — stops
paying for itself).  Where the crossover sits depends on the machine and
on the instance shape, so this module mirrors the kernel dispatcher's
:mod:`repro.kernels.costmodel` discipline exactly: a calibration file
(``DYNAMIC_CALIBRATION.json`` at the repo root, schema-validated, stamped
with :func:`repro.util.hostid.machine_identity` and **ignored** on
machine mismatch) maps each *shape bucket* — the same dimension × universe
vocabulary as kernel dispatch, see
:func:`repro.kernels.costmodel.shape_bucket` — to a measured crossover
delta-fraction.  Without a usable calibration the dispatcher falls back
to a static threshold; a bad calibration can never break an update, only
mis-route it.

``scripts/dynamic_calibrate.py`` produces the calibration by racing
repair against recompute at increasing delta fractions per bucket.
Override the file location with ``REPRO_DYNAMIC_CALIBRATION``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.kernels.costmodel import shape_bucket
from repro.util.hostid import machine_identity

__all__ = [
    "DEFAULT_CALIBRATION_PATH",
    "ENV_CALIBRATION",
    "STATIC_CROSSOVER_FRACTION",
    "CrossoverCalibration",
    "DynamicCalibrationError",
    "StrategyDecision",
    "calibration_path",
    "decide_strategy",
    "delta_band",
    "invalidate_calibration_cache",
    "load_calibration",
    "usable_calibration",
]

#: Environment variable overriding the calibration file location.
ENV_CALIBRATION = "REPRO_DYNAMIC_CALIBRATION"

#: Default location, next to the BENCH_*.json baselines at the repo root.
DEFAULT_CALIBRATION_PATH = Path(__file__).resolve().parents[3] / "DYNAMIC_CALIBRATION.json"

#: Delta-fraction above which recompute wins when no calibration applies.
#: Conservative: repair's fixed overhead (diff + component labeling) is
#: vectorised while the greedy scan it avoids is per-vertex Python, so the
#: measured crossover usually sits far higher.
STATIC_CROSSOVER_FRACTION = 0.25

#: Delta-fraction band upper bounds (exclusive), smallest first; used only
#: for the low-cardinality decision counters, never for dispatch itself.
_DELTA_BANDS: tuple[tuple[float, str], ...] = (
    (0.01, "lt1pct"),
    (0.05, "lt5pct"),
    (0.20, "lt20pct"),
)
_DELTA_TOP = "ge20pct"


class DynamicCalibrationError(ValueError):
    """A dynamic calibration file exists but does not match the schema."""


@dataclass(frozen=True)
class CrossoverCalibration:
    """A loaded, schema-validated crossover calibration."""

    path: Path
    buckets: Mapping[str, float]  # shape bucket -> crossover delta-fraction
    provenance: Mapping[str, object]
    raw: Mapping[str, object]

    @property
    def machine_id(self) -> str:
        return str(self.provenance["machine_id"])


@dataclass(frozen=True)
class StrategyDecision:
    """One repair-vs-recompute routing decision, with its audit trail."""

    strategy: str  # "repair" | "recompute"
    reason: str
    bucket: str  # shape bucket (kernel vocabulary, e.g. "d3-u4k")
    band: str  # delta-fraction band (e.g. "lt1pct")
    threshold: float
    mode: str  # "cost-model" | "static"


def delta_band(fraction: float) -> str:
    """Low-cardinality label for a delta fraction (counter dimension)."""
    for bound, label in _DELTA_BANDS:
        if fraction < bound:
            return label
    return _DELTA_TOP


def calibration_path() -> Path:
    """The calibration file location (env override, else the repo default)."""
    override = os.environ.get(ENV_CALIBRATION)
    return Path(override) if override else DEFAULT_CALIBRATION_PATH


def load_calibration(path: Path) -> CrossoverCalibration:
    """Load and schema-validate one crossover calibration file.

    Raises ``FileNotFoundError`` if absent and
    :class:`DynamicCalibrationError` on any shape violation, including a
    missing ``provenance.machine_id`` — an unattributed measurement must
    never steer dispatch.
    """
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise DynamicCalibrationError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise DynamicCalibrationError(f"{path}: top level must be an object")
    if doc.get("schema") != 1:
        raise DynamicCalibrationError(
            f"{path}: unsupported schema {doc.get('schema')!r} (expected 1)"
        )
    provenance = doc.get("provenance")
    if not isinstance(provenance, dict) or not isinstance(
        provenance.get("machine_id"), str
    ):
        raise DynamicCalibrationError(
            f"{path}: provenance.machine_id (a string) is required"
        )
    buckets_doc = doc.get("buckets")
    if not isinstance(buckets_doc, dict) or not buckets_doc:
        raise DynamicCalibrationError(f"{path}: buckets must be a non-empty object")
    buckets: dict[str, float] = {}
    for bucket, entry in buckets_doc.items():
        if not isinstance(entry, dict) or "crossover_fraction" not in entry:
            raise DynamicCalibrationError(
                f"{path}: buckets[{bucket!r}] must be an object with crossover_fraction"
            )
        value = entry["crossover_fraction"]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise DynamicCalibrationError(
                f"{path}: buckets[{bucket!r}].crossover_fraction must be a number"
            )
        fraction = float(value)
        if not 0.0 <= fraction <= 1.0:
            raise DynamicCalibrationError(
                f"{path}: buckets[{bucket!r}].crossover_fraction must be in [0, 1]"
            )
        buckets[str(bucket)] = fraction
    return CrossoverCalibration(path=path, buckets=buckets, provenance=provenance, raw=doc)


def usable_calibration(
    path: Path | None = None, *, machine_id: str | None = None
) -> CrossoverCalibration | None:
    """The calibration dispatch may act on, or ``None`` with the reason counted."""
    from repro.obs import metrics as obs_metrics

    p = path if path is not None else calibration_path()
    try:
        cal = load_calibration(p)
    except FileNotFoundError:
        obs_metrics.inc("dynamic/calibration/missing")
        return None
    except DynamicCalibrationError:
        obs_metrics.inc("dynamic/calibration/invalid")
        return None
    current = machine_id if machine_id is not None else machine_identity()
    if cal.machine_id != current:
        obs_metrics.inc("dynamic/calibration/machine-mismatch")
        return None
    obs_metrics.inc("dynamic/calibration/loaded")
    return cal


#: Per-path memo of usable_calibration so sustained churn does not re-read
#: the file on every update (same discipline as kernel dispatch's cache).
_CAL_CACHE: dict[Path, CrossoverCalibration | None] = {}


def invalidate_calibration_cache() -> None:
    """Drop the memoised calibration (tests and calibration writers)."""
    _CAL_CACHE.clear()


def _cached_calibration() -> CrossoverCalibration | None:
    path = calibration_path().resolve()
    if path not in _CAL_CACHE:
        if len(_CAL_CACHE) > 8:
            _CAL_CACHE.clear()
        _CAL_CACHE[path] = usable_calibration(path)
    return _CAL_CACHE[path]


def decide_strategy(
    delta_fraction: float, dimension: int, universe: int
) -> StrategyDecision:
    """Route one update batch: repair in place or recompute from scratch.

    The batch's *delta fraction* (changed edges over ``|E_old ∪ E_new|``)
    is compared against the crossover for the instance's shape bucket —
    measured when a usable calibration covers the bucket, the static
    threshold otherwise.
    """
    bucket = shape_bucket(dimension, universe)
    band = delta_band(delta_fraction)
    cal = _cached_calibration()
    if cal is not None and bucket in cal.buckets:
        threshold = cal.buckets[bucket]
        mode = "cost-model"
    else:
        threshold = STATIC_CROSSOVER_FRACTION
        mode = "static"
    strategy = "repair" if delta_fraction <= threshold else "recompute"
    reason = (
        f"{mode}: delta {delta_fraction:.4f} "
        f"{'<=' if strategy == 'repair' else '>'} crossover {threshold:.4f} [{bucket}]"
    )
    return StrategyDecision(
        strategy=strategy,
        reason=reason,
        bucket=bucket,
        band=band,
        threshold=threshold,
        mode=mode,
    )
