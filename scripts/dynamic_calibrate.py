"""Measure the dynamic crossover: repair vs recompute per shape bucket.

The repair-vs-recompute dispatcher (``repro.dynamic.costmodel``) decides
by delta fraction — the share of the edge set an update batch rewrites.
Without calibration it uses one static threshold for every instance
shape; this script measures the *actual* crossover fraction per shape
bucket on this machine and writes ``DYNAMIC_CALIBRATION.json`` at the
repo root (or ``--output``).

For each probe shape it builds a sharded multi-component instance, then
sweeps a grid of delta fractions; at each fraction it times forced-repair
and forced-recompute engines absorbing identically-sized update batches
(half departures of existing edges, half fresh arrivals) and records the
median per-update wall clock.  The reported ``crossover_fraction`` is
where the repair/recompute time ratio crosses 1, linearly interpolated
between grid points — updates below it should repair, above it recompute.

The payload is stamped with ``machine_identity()`` and the same rule as
the kernel cost model applies: a calibration measured on another machine
is ignored at load time (counted, never silently applied).

    PYTHONPATH=src python scripts/dynamic_calibrate.py           # probe
    PYTHONPATH=src python scripts/dynamic_calibrate.py --quick   # 2 buckets
"""

from __future__ import annotations

import argparse
import datetime
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.dynamic import DynamicMIS  # noqa: E402
from repro.generators import sharded_hypergraph  # noqa: E402
from repro.hypergraph import Hypergraph  # noqa: E402
from repro.kernels.costmodel import shape_bucket  # noqa: E402
from repro.util.hostid import machine_identity  # noqa: E402
from repro.util.rng import as_generator  # noqa: E402

OUT = REPO / "DYNAMIC_CALIBRATION.json"

#: One probe instance per bucket: (dimension, blocks, block_n, block_m).
#: Universes (blocks x block_n) sit inside their band; sharded so repair
#: has components to localize to.
PROBE_SHAPES: list[tuple[int, int, int, int]] = [
    (2, 48, 16, 24),
    (2, 192, 16, 24),
    (3, 48, 16, 30),
    (3, 192, 16, 30),
    (3, 600, 16, 30),
    (4, 48, 16, 30),
    (4, 192, 16, 30),
]

#: The ``--quick`` subset.
QUICK_SHAPES: list[tuple[int, int, int, int]] = [
    (3, 48, 16, 30),
    (3, 192, 16, 30),
]

#: Delta fractions swept per bucket (changed edges / |E_old ∪ E_new|).
FRACTION_GRID = (0.01, 0.05, 0.10, 0.20, 0.40)
PROBE_SEED = 20140623  # SPAA'14


def _make_batch(
    H: Hypergraph, fraction: float, rng: np.random.Generator
) -> tuple[list[tuple[int, ...]], list[tuple[int, ...]]]:
    """An update batch rewriting ~*fraction* of H's edge set (half out, half in)."""
    m = H.num_edges
    d = H.dimension or 3
    # changed = 2r, denominator = m + r  =>  r = fraction*m / (2 - fraction)
    r = max(1, round(fraction * m / (2.0 - fraction)))
    edges = H.edges
    removes = [edges[i] for i in rng.choice(m, size=min(r, m), replace=False)]
    adds = []
    while len(adds) < r:
        e = tuple(sorted(int(v) for v in rng.choice(H.universe, size=d, replace=False)))
        adds.append(e)
    return adds, removes


def _median_update_ns(
    H: Hypergraph, strategy: str, fraction: float, samples: int, seed: int
) -> int:
    rng = as_generator((seed, "dynamic-calibrate"))
    times = []
    for s in range(samples):
        engine = DynamicMIS(H, seed=seed + s, strategy=strategy, validate=False)
        adds, removes = _make_batch(H, fraction, rng)
        t0 = time.perf_counter_ns()
        engine.apply(adds, removes, strict=False)
        times.append(time.perf_counter_ns() - t0)
    return int(statistics.median(times))


def _crossover(fractions: list[float], ratios: list[float]) -> float:
    """Where the repair/recompute ratio crosses 1, interpolated; clamped."""
    prev_f, prev_r = 0.0, 0.0
    for f, r in zip(fractions, ratios):
        if r >= 1.0:
            if r == prev_r:
                return f
            t = (1.0 - prev_r) / (r - prev_r)
            return round(min(1.0, max(0.0, prev_f + t * (f - prev_f))), 4)
        prev_f, prev_r = f, r
    return fractions[-1]  # repair won everywhere probed


def probe(shapes: list[tuple[int, int, int, int]], samples: int) -> dict:
    buckets: dict[str, dict] = {}
    for d, blocks, block_n, block_m in shapes:
        H = sharded_hypergraph(blocks, block_n, block_m, d, seed=PROBE_SEED)
        bucket = shape_bucket(d, H.universe)
        ratios = []
        sweep = {}
        for frac in FRACTION_GRID:
            rep = _median_update_ns(H, "repair", frac, samples, PROBE_SEED)
            rec = _median_update_ns(H, "recompute", frac, samples, PROBE_SEED)
            ratios.append(rep / rec)
            sweep[f"{frac:g}"] = {"repair_ns": rep, "recompute_ns": rec}
        crossover = _crossover(list(FRACTION_GRID), ratios)
        buckets[bucket] = {"crossover_fraction": crossover, "sweep": sweep}
        print(
            f"  {bucket:<16} n={H.universe:<6} m={H.num_edges:<6} "
            f"crossover={crossover:g}  "
            f"ratios={['%.2f' % r for r in ratios]}"
        )
    return {
        "schema": 1,
        "unit": "ns",
        "stat": "median",
        "buckets": buckets,
        "provenance": {
            "machine_id": machine_identity(),
            "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="seconds"
            ),
            "samples": samples,
            "seed": PROBE_SEED,
            "fraction_grid": list(FRACTION_GRID),
        },
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--output", type=Path, default=OUT)
    ap.add_argument("--samples", type=int, default=3)
    ap.add_argument(
        "--quick", action="store_true", help="probe a two-bucket subset"
    )
    args = ap.parse_args(argv)
    shapes = QUICK_SHAPES if args.quick else PROBE_SHAPES
    print(
        f"probing {len(shapes)} shapes x {len(FRACTION_GRID)} fractions x "
        f"{args.samples} samples per strategy:"
    )
    payload = probe(shapes, args.samples)
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output} (machine_id={payload['provenance']['machine_id']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
