"""Bench trend: render the perf trajectory recorded in BENCH_history.jsonl.

Every ``bench_smoke``/``bench_gate`` run appends one provenance-stamped
line per suite to ``BENCH_history.jsonl``.  This script turns that log
into per-entry trajectories — a sparkline over runs plus first/last/best
medians and the net drift — so a slow creep that never trips the gate's
25% threshold in any single run is still visible across a week of runs::

    PYTHONPATH=src python scripts/bench_trend.py
    PYTHONPATH=src python scripts/bench_trend.py --suite m01 --entry bl_bitset
    PYTHONPATH=src python scripts/bench_trend.py --history ci-artifact.jsonl

Runs from other machines are excluded by default (their medians are not
comparable; ``--all-machines`` includes them).  Exit status 1 when the
history file is missing or holds no matching records.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from bench_smoke import HISTORY, machine_identity


def load_history(path: Path) -> list[dict]:
    """Parse the history log, skipping damaged lines (crashed appends)."""
    records: list[dict] = []
    skipped = 0
    with open(path, encoding="utf-8") as f:
        for line in f:
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if isinstance(doc, dict) and doc.get("medians_ns"):
                records.append(doc)
            else:
                skipped += 1
    if skipped:
        print(f"warning: skipped {skipped} unparseable line(s)", file=sys.stderr)
    return records


def render_trend(
    records: list[dict],
    *,
    suite: str | None = None,
    entry: str | None = None,
    width: int = 60,
) -> str:
    """Per-entry trajectory rows over the (filtered) history records."""
    from repro.analysis.sparkline import trajectory

    if suite is not None:
        records = [r for r in records if r.get("suite") == suite]
    series: dict[tuple[str, str], list[float]] = {}
    for rec in records:
        for name, ns in rec["medians_ns"].items():
            if entry is not None and name != entry:
                continue
            series.setdefault((rec.get("suite", "?"), name), []).append(ns / 1e6)
    if not series:
        return ""
    lines = [f"{len(records)} run(s) in history"]
    for (rec_suite, name), vals in sorted(series.items()):
        drift = (vals[-1] / vals[0] - 1) * 100 if vals[0] else 0.0
        lines.append("")
        lines.append(
            f"[{rec_suite}] {name}: first {vals[0]:.3f} ms  last {vals[-1]:.3f} ms  "
            f"best {min(vals):.3f} ms  drift {drift:+.1f}% over {len(vals)} run(s)"
        )
        lines.append(trajectory("ms", vals, width=width))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--history",
        type=Path,
        default=HISTORY,
        help="history file to render (default: %(default)s)",
    )
    parser.add_argument(
        "--suite",
        choices=["m01", "m02", "m03"],
        default=None,
        help="restrict to one suite",
    )
    parser.add_argument(
        "--entry", default=None, help="restrict to one benchmark entry (e.g. bl_bitset)"
    )
    parser.add_argument("--width", type=int, default=60, help="sparkline width")
    parser.add_argument(
        "--all-machines",
        action="store_true",
        help="include runs recorded on other machines (not comparable!)",
    )
    args = parser.parse_args(argv)

    if not args.history.exists():
        print(
            f"no history at {args.history} — run scripts/bench_smoke.py first",
            file=sys.stderr,
        )
        return 1
    records = load_history(args.history)
    if not args.all_machines:
        here = machine_identity()
        mine = [
            r
            for r in records
            if (r.get("provenance") or {}).get("machine_id") in (here, None)
        ]
        if len(mine) < len(records):
            print(
                f"excluded {len(records) - len(mine)} run(s) from other machines "
                f"(--all-machines to include)",
                file=sys.stderr,
            )
        records = mine
    out = render_trend(
        records, suite=args.suite, entry=args.entry, width=args.width
    )
    if not out:
        print("history holds no matching records", file=sys.stderr)
        return 1
    print(out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
