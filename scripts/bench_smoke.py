"""Bench smoke: run the M1 kernel micro-benchmarks and record medians.

Runs ``benchmarks/bench_m01_solver_kernels.py`` through pytest-benchmark
and writes ``BENCH_m01.json`` at the repo root: one entry per kernel with
the median in nanoseconds.  This is the opt-in perf gate wired into the
tier-1 targets (see ROADMAP.md) — run it before and after touching the
hot paths and diff the medians:

    PYTHONPATH=src python scripts/bench_smoke.py

Exit status is non-zero if the benchmark run itself fails; the script
does not enforce thresholds (the JSON is the record, review the diff).
"""

from __future__ import annotations

import datetime
import json
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BENCH = REPO / "benchmarks" / "bench_m01_solver_kernels.py"
OUT = REPO / "BENCH_m01.json"


def _provenance() -> dict:
    """Record where the numbers came from: commit, toolchain, time."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (subprocess.CalledProcessError, OSError):
        commit = None
    import numpy

    return {
        "git_commit": commit,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds")
        .replace("+00:00", "Z"),
    }


def run_benchmarks() -> dict:
    """Run the kernel benchmarks once and return the medians payload.

    Shared by this script (which commits the payload as BENCH_m01.json)
    and ``scripts/bench_gate.py`` (which compares a fresh payload against
    the committed one).  Raises ``RuntimeError`` if the pytest-benchmark
    run fails.
    """
    with tempfile.TemporaryDirectory() as tmp:
        raw = Path(tmp) / "bench.json"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                str(BENCH),
                "-q",
                "--benchmark-only",
                f"--benchmark-json={raw}",
            ],
            cwd=REPO,
            env={**__import__("os").environ, "PYTHONPATH": str(REPO / "src")},
        )
        if proc.returncode != 0:
            raise RuntimeError(f"benchmark run failed (pytest rc={proc.returncode})")
        report = json.loads(raw.read_text())

    medians = {
        bench["name"].removeprefix("test_kernel_"): int(
            bench["stats"]["median"] * 1e9
        )
        for bench in report["benchmarks"]
    }
    return {
        "benchmark": BENCH.name,
        "unit": "ns",
        "stat": "median",
        "machine": report.get("machine_info", {}).get("cpu", {}).get("brand_raw"),
        "provenance": _provenance(),
        "medians_ns": dict(sorted(medians.items())),
    }


def main() -> int:
    try:
        payload = run_benchmarks()
    except RuntimeError as exc:
        print(exc, file=sys.stderr)
        return 1
    medians = payload["medians_ns"]
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    width = max(len(k) for k in medians)
    for name, ns in sorted(medians.items()):
        print(f"{name:<{width}}  {ns / 1e6:10.3f} ms")
    print(f"\nwrote {OUT.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
