"""Bench smoke: run the benchmark suites and record medians + IQR.

Three suites, one JSON baseline each at the repo root:

* **m01** — the solver-kernel micro-benchmarks
  (``benchmarks/bench_m01_solver_kernels.py`` via pytest-benchmark, with
  warmup iterations enabled so first-call JIT/cache effects don't land in
  the recorded samples) → ``BENCH_m01.json``.
* **m02** — campaign throughput serial vs the parallel executor
  (``benchmarks/bench_m02_campaign_throughput.py``, plain wall-clock
  timing) → ``BENCH_m02.json``.
* **m03** — solve-service throughput and tail latency per request path
  (``benchmarks/bench_m03_service.py``, a live server driven over its
  unix socket) → ``BENCH_m03.json``.
* **m04** — incremental MIS under edge streams: repair vs recompute,
  dispatcher crossover and sustained-churn throughput
  (``benchmarks/bench_m04_dynamic.py``, plain wall-clock timing) →
  ``BENCH_m04.json``.

Both payloads carry ``medians_ns`` and ``iqr_ns`` per entry; the IQR is
what lets ``scripts/bench_gate.py`` distinguish a real regression from
run-to-run noise.  This is the opt-in perf gate wired into the tier-1
targets (see ROADMAP.md) — run it before and after touching the hot paths
and diff the medians:

    PYTHONPATH=src python scripts/bench_smoke.py            # both suites
    PYTHONPATH=src python scripts/bench_smoke.py --suite m01

Every run also appends one provenance-stamped line per suite to
``BENCH_history.jsonl`` (gitignored; CI uploads it as an artifact), the
raw material ``scripts/bench_trend.py`` renders as perf trajectories.

Exit status is non-zero if a benchmark run itself fails; the script does
not enforce thresholds (the JSON is the record, review the diff).
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

# Re-exported for historical importers (scripts/bench_gate.py and tests);
# the definition lives in the package so the kernel cost model shares it.
from repro.util.hostid import machine_identity  # noqa: E402
BENCH = REPO / "benchmarks" / "bench_m01_solver_kernels.py"
OUT = REPO / "BENCH_m01.json"
OUT_M02 = REPO / "BENCH_m02.json"
OUT_M03 = REPO / "BENCH_m03.json"
OUT_M04 = REPO / "BENCH_m04.json"
#: Append-only perf trajectory (gitignored; uploaded as a CI artifact).
HISTORY = REPO / "BENCH_history.jsonl"

#: pytest-benchmark warmup iterations for the m01 kernels.
WARMUP_ITERATIONS = 5


def _provenance() -> dict:
    """Record where the numbers came from: commit, toolchain, machine, time."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (subprocess.CalledProcessError, OSError):
        commit = None
    import numpy

    return {
        "git_commit": commit,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
        "machine_id": machine_identity(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds")
        .replace("+00:00", "Z"),
    }


def append_history(
    suite: str, payload: dict, *, history_path: Path = HISTORY, kind: str = "smoke"
) -> None:
    """Append one run's medians (+ provenance) to the perf-trajectory log.

    One JSON object per line, append-only, so every bench run — smoke
    refreshes and gate checks alike — leaves a data point that
    ``scripts/bench_trend.py`` can plot against time/commits.
    """
    record = {
        "suite": suite,
        "kind": kind,
        "provenance": payload.get("provenance"),
        "medians_ns": payload.get("medians_ns"),
        "iqr_ns": payload.get("iqr_ns"),
    }
    with open(history_path, "a", encoding="utf-8") as f:
        f.write(json.dumps(record, separators=(",", ":")) + "\n")


def run_benchmarks(warmup_iterations: int = WARMUP_ITERATIONS) -> dict:
    """Run the m01 kernel benchmarks once and return the payload.

    Shared by this script (which commits the payload as BENCH_m01.json)
    and ``scripts/bench_gate.py`` (which compares a fresh payload against
    the committed one).  Raises ``RuntimeError`` if the pytest-benchmark
    run fails.
    """
    with tempfile.TemporaryDirectory() as tmp:
        raw = Path(tmp) / "bench.json"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                str(BENCH),
                "-q",
                "--benchmark-only",
                "--benchmark-warmup=on",
                f"--benchmark-warmup-iterations={warmup_iterations}",
                f"--benchmark-json={raw}",
            ],
            cwd=REPO,
            env={**__import__("os").environ, "PYTHONPATH": str(REPO / "src")},
        )
        if proc.returncode != 0:
            raise RuntimeError(f"benchmark run failed (pytest rc={proc.returncode})")
        report = json.loads(raw.read_text())

    medians = {}
    iqrs = {}
    for bench in report["benchmarks"]:
        name = bench["name"].removeprefix("test_kernel_")
        medians[name] = int(bench["stats"]["median"] * 1e9)
        iqrs[name] = int(bench["stats"]["iqr"] * 1e9)
    return {
        "benchmark": BENCH.name,
        "unit": "ns",
        "stat": "median",
        "machine": report.get("machine_info", {}).get("cpu", {}).get("brand_raw"),
        "warmup_iterations": warmup_iterations,
        "provenance": _provenance(),
        "medians_ns": dict(sorted(medians.items())),
        "iqr_ns": dict(sorted(iqrs.items())),
    }


def run_benchmarks_m02() -> dict:
    """Run the m02 campaign-throughput benchmark and return the payload."""
    sys.path.insert(0, str(REPO / "benchmarks"))
    try:
        from bench_m02_campaign_throughput import run_m02
    finally:
        sys.path.pop(0)
    payload = run_m02()
    payload["provenance"] = _provenance()
    return payload


def run_benchmarks_m03() -> dict:
    """Run the m03 solve-service benchmark and return the payload."""
    sys.path.insert(0, str(REPO / "benchmarks"))
    try:
        from bench_m03_service import run_m03
    finally:
        sys.path.pop(0)
    payload = run_m03()
    payload["provenance"] = _provenance()
    return payload


def run_benchmarks_m04() -> dict:
    """Run the m04 dynamic repair-vs-recompute benchmark and return the payload."""
    sys.path.insert(0, str(REPO / "benchmarks"))
    try:
        from bench_m04_dynamic import run_m04
    finally:
        sys.path.pop(0)
    payload = run_m04()
    payload["provenance"] = _provenance()
    return payload


#: suite name -> (runner, baseline path)
SUITES = {
    "m01": (run_benchmarks, OUT),
    "m02": (run_benchmarks_m02, OUT_M02),
    "m03": (run_benchmarks_m03, OUT_M03),
    "m04": (run_benchmarks_m04, OUT_M04),
}


def _print_payload(payload: dict) -> None:
    medians = payload["medians_ns"]
    iqrs = payload.get("iqr_ns", {})
    width = max(len(k) for k in medians)
    for name, ns in sorted(medians.items()):
        iqr = iqrs.get(name)
        tail = f"  (IQR {iqr / 1e6:7.3f} ms)" if iqr is not None else ""
        print(f"{name:<{width}}  {ns / 1e6:10.3f} ms{tail}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        choices=[*SUITES, "all"],
        default="all",
        help="which benchmark suite(s) to run and record (default: all)",
    )
    args = parser.parse_args(argv)
    suites = list(SUITES) if args.suite == "all" else [args.suite]
    for suite in suites:
        runner, out = SUITES[suite]
        try:
            payload = runner()
        except RuntimeError as exc:
            print(exc, file=sys.stderr)
            return 1
        out.write_text(json.dumps(payload, indent=2) + "\n")
        append_history(suite, payload, kind="smoke")
        print(f"[{suite}]")
        _print_payload(payload)
        print(f"wrote {out.relative_to(REPO)}\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
