"""Measure the kernel cost model: probe csr vs bitset per shape bucket.

The dispatcher's ``auto`` mode (``repro.kernels.dispatch``) consults a
per-machine calibration file when one exists: for each shape bucket
(dimension band x universe band, :func:`repro.kernels.costmodel.shape_bucket`)
it records which backend actually measured faster *on this machine*, and
``select_backend`` follows the measurement instead of the static envelope.

This script produces that file.  For every bucket inside the dense
envelope it builds a representative random instance, solves it end-to-end
under ``use_kernel("csr")`` and ``use_kernel("bitset")``, and writes the
median wall-clock (ns) of each to ``KERNEL_CALIBRATION.json`` at the repo
root (or ``--output``).  The payload is stamped with
``machine_identity()`` — the same bench_gate rule applies: a calibration
measured elsewhere is ignored at load time, never silently applied.

    PYTHONPATH=src python scripts/kernel_calibrate.py              # probe
    PYTHONPATH=src python scripts/kernel_calibrate.py --samples 5
    PYTHONPATH=src python scripts/kernel_calibrate.py --quick      # 3 buckets

CI uses ``--verify-fixture`` instead of trusting a fresh probe: it checks
that the committed cross-machine fixture is *ignored* as committed, and
*honored* once re-stamped with the local machine id — i.e. the dispatch
plumbing end-to-end, independent of this machine's timings.

    PYTHONPATH=src python scripts/kernel_calibrate.py \
        --verify-fixture tests/fixtures/kernel_calibration.json
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import statistics
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.bl import beame_luby  # noqa: E402
from repro.generators import uniform_hypergraph  # noqa: E402
from repro.hypergraph import Hypergraph  # noqa: E402
from repro.kernels import use_kernel  # noqa: E402
from repro.kernels.costmodel import shape_bucket  # noqa: E402
from repro.util.hostid import machine_identity  # noqa: E402

OUT = REPO / "KERNEL_CALIBRATION.json"

#: One probe instance per bucket: (dimension, universe, edges).  The
#: universes sit inside their band; edge counts keep each solve well
#: under a second per backend so the full probe stays CI-friendly.
PROBE_SHAPES: list[tuple[int, int, int]] = [
    (2, 768, 1536),
    (2, 1536, 3072),
    (2, 3072, 6144),
    (2, 6144, 9216),
    (2, 16384, 16384),
    (3, 768, 1536),
    (3, 1536, 3072),
    (3, 3072, 6144),
    (3, 6144, 9216),
    (3, 16384, 16384),
    (4, 768, 1536),
    (4, 1536, 3072),
    (4, 3072, 6144),
    (4, 6144, 9216),
    (4, 16384, 16384),
]

#: The ``--quick`` subset: one bucket per dimension band.
QUICK_SHAPES: list[tuple[int, int, int]] = [
    (2, 768, 1536),
    (3, 3072, 6144),
    (4, 768, 1536),
]

BACKENDS = ("csr", "bitset")
PROBE_SEED = 20140623  # SPAA'14


def _median_ns(H: Hypergraph, kernel: str, samples: int) -> int:
    times = []
    for _ in range(samples):
        t0 = time.perf_counter_ns()
        with use_kernel(kernel):
            beame_luby(H, seed=1)
        times.append(time.perf_counter_ns() - t0)
    return int(statistics.median(times))


def probe(shapes: list[tuple[int, int, int]], samples: int) -> dict:
    buckets: dict[str, dict[str, int]] = {}
    for d, universe, m in shapes:
        bucket = shape_bucket(d, universe)
        H = uniform_hypergraph(universe, m, d, seed=PROBE_SEED)
        entry = {k: _median_ns(H, k, samples) for k in BACKENDS}
        buckets[bucket] = entry
        winner = min(entry, key=lambda k: (entry[k], k != "bitset"))
        print(
            f"  {bucket:<16} csr={entry['csr'] / 1e6:9.2f}ms "
            f"bitset={entry['bitset'] / 1e6:9.2f}ms -> {winner}"
        )
    return {
        "schema": 1,
        "unit": "ns",
        "stat": "median",
        "buckets": buckets,
        "provenance": {
            "machine_id": machine_identity(),
            "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="seconds"
            ),
            "samples": samples,
            "seed": PROBE_SEED,
        },
    }


def verify_fixture(fixture: Path) -> int:
    """CI check: the committed fixture steers dispatch exactly as specced.

    1. As committed (foreign ``machine_id``) it must be **ignored**:
       dispatch falls back to the static envelope.
    2. Re-stamped with the local machine id it must be **honored**: every
       covered bucket's measured winner is what ``select_backend`` picks.
    """
    from repro.kernels.dispatch import invalidate_calibration_cache, select_backend

    doc = json.loads(fixture.read_text())
    failures: list[str] = []

    def _probe_instance(bucket: str) -> Hypergraph:
        d = {"d2": 2, "d3": 3, "d4plus": 4}[bucket.split("-")[0]]
        u = {"u1k": 768, "u2k": 1536, "u4k": 3072, "u8k": 6144, "u8kplus": 16384}[
            bucket.split("-")[1]
        ]
        edges = [tuple(range(i, i + d)) for i in range(0, 4 * d, d)]
        return Hypergraph(u, edges)

    # 1. Foreign machine_id => ignored, static fallback decides.
    os.environ["REPRO_KERNEL_CALIBRATION"] = str(fixture)
    invalidate_calibration_cache()
    for bucket in doc["buckets"]:
        d = select_backend(_probe_instance(bucket), requested="auto")
        if not d.reason.startswith("auto:"):
            failures.append(
                f"{bucket}: cross-machine fixture was not ignored ({d.reason})"
            )

    # 2. Local machine_id => honored bucket by bucket.
    doc["provenance"]["machine_id"] = machine_identity()
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fh:
        json.dump(doc, fh)
        local = fh.name
    try:
        os.environ["REPRO_KERNEL_CALIBRATION"] = local
        invalidate_calibration_cache()
        for bucket, entry in doc["buckets"].items():
            want = "bitset" if entry["bitset"] <= entry["csr"] else "csr"
            d = select_backend(_probe_instance(bucket), requested="auto")
            if (d.backend, d.reason) != (want, f"cost-model:{want}"):
                failures.append(
                    f"{bucket}: want ({want}, cost-model:{want}), "
                    f"got ({d.backend}, {d.reason})"
                )
    finally:
        os.unlink(local)
        os.environ.pop("REPRO_KERNEL_CALIBRATION", None)
        invalidate_calibration_cache()

    for line in failures:
        print(f"FAIL {line}", file=sys.stderr)
    if not failures:
        print(f"ok: dispatch honors {fixture} ({len(doc['buckets'])} buckets)")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--output", type=Path, default=OUT)
    ap.add_argument("--samples", type=int, default=3)
    ap.add_argument(
        "--quick", action="store_true", help="probe one bucket per dimension band"
    )
    ap.add_argument(
        "--verify-fixture",
        type=Path,
        default=None,
        metavar="PATH",
        help="skip probing; assert select_backend honors the committed fixture",
    )
    args = ap.parse_args(argv)
    if args.verify_fixture is not None:
        return verify_fixture(args.verify_fixture)
    shapes = QUICK_SHAPES if args.quick else PROBE_SHAPES
    print(f"probing {len(shapes)} buckets x {args.samples} samples per backend:")
    payload = probe(shapes, args.samples)
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output} (machine_id={payload['provenance']['machine_id']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
