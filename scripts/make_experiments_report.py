#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from the experiment runners.

Runs every experiment E1–E17 (scale selectable) and writes the
paper-claim-vs-measured report.  Usage::

    python scripts/make_experiments_report.py [--scale quick|full] [--seed N]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.analysis import EXPERIMENTS, run_experiment

#: What the paper claims, per experiment — the "expected" column of the report.
PAPER_CLAIMS = {
    "E1": "Theorem 1: SBL finds an MIS; the number of sampling rounds is at "
          "most r = 2·log n/p w.h.p. (event A analysis, §2.2).",
    "E2": "Theorem 1: SBL runs in n^{2/log⁽³⁾n} = n^{o(1)} EREW-PRAM time, "
          "the first o(√n) bound for (nearly) general hypergraphs; KUW is the "
          "O(√n) baseline it must asymptotically beat.",
    "E3": "Theorem 2: BL terminates in O((log n)^{(d+4)!}) rounds w.h.p. for "
          "d ≤ log⁽²⁾n/(4·log⁽³⁾n) — polylogarithmic for fixed d.",
    "E4": "§2.2 claim (1): each round colours at least p·nᵢ/2 vertices, "
          "failing with probability ≤ e^{−p·nᵢ/8} (Chernoff / Lemma 1).",
    "E5": "§2.2 claim (2): the probability that a sampled sub-hypergraph has "
          "an edge of size > d is at most m·p^{d+1} per round.",
    "E6": "Lemma 2 (Beame–Luby): conditioned on a set X being fully marked, "
          "it is unmarked with probability < 1/2 at p = 1/(2^{d+1}Δ).",
    "E7": "Theorem 3 + Corollaries 1–4: the per-stage increase of d_j(x,H) is "
          "at most Σ_{k>j}(log n)^{2^{k−j+1}}Δ_k (Kelsen) and, via Kim–Vu, "
          "Σ_{k>j}(log n)^{2(k−j)}Δ_k — a strictly smaller bound.",
    "E8": "Karp–Upfal–Wigderson: O(√n) rounds with poly(m,n) processors on "
          "general hypergraphs.",
    "E9": "§2.2 parameter choices: α = 1/log⁽³⁾n, β = log⁽²⁾n/(8(log⁽³⁾n)²), "
          "d = log⁽²⁾n/(4·log⁽³⁾n), runtime bound n^{2/log⁽³⁾n}; the claim "
          "d(d+1) ≤ (log⁽²⁾n)(d²−8) holds for d below the cap (for "
          "sufficiently large n).",
    "E10": "§1 survey: graphs are easy (Luby, O(log n)); general hypergraphs "
           "need KUW/SBL; BL is the small-dimension tool; the permutation "
           "algorithm is conjectured RNC.",
    "E11": "§3.1: with Kelsen's original recurrence the claim inequality "
           "reduces to 2^{d(d+1)} ≤ ~2 (false for every d ≥ 1); replacing "
           "the additive constant 7 by d² restores it for large n.",
    "E12": "§4.1: any scaling function F making the argument work must "
           "satisfy F(j) ≥ F(j−1)·j + 5 — so the (log n)^{F(d−1)(d−1)} stage "
           "count stays super-factorial in d even with Kim–Vu.",
    "E13": "§2.1: the blue set is independent and maximal — every violation "
           "of either property yields a contradiction (and our validators "
           "must produce a concrete witness for any corruption).",
    "E14": "§1 survey (Luczak–Szymanska 1997): MIS of linear hypergraphs is "
           "in RNC — polylog rounds with a marking probability that "
           "linearity allows to be 2^d times larger than BL's.",
    "E15": "§3 (Theorem 3 setting): the migration polynomial "
           "S(H′, w′, p) = Σ_Y w′(Y)·C_Y stays below k(H′)·D(H′, w′, p) "
           "w.h.p., with D ≤ (Δ_{|X|+k})^j (Lemma 4); §4's Kim–Vu factor is "
           "strictly smaller than Kelsen's, with the gap growing in k−j.",
    "E16": "Lemma 5 (§3.1): across any polylog window the universal "
           "threshold v₂(H_s) grows by at most a (1+o(1)) factor, and the "
           "full argument reduces it by a constant factor every q_d stages, "
           "so v₂ → 0 within O(log n · q_d) stages.",
    "E17": "§1: Beame–Luby's random-permutation algorithm is conjectured to "
           "work in RNC for the general problem (Shachnai–Srinivasan 2004 "
           "made progress on its analysis) — so its round counts should stay "
           "polylogarithmic on every family we can throw at it.",
}

HEADER = """# EXPERIMENTS — paper claims vs measured behaviour

Reproduction report for *"On Computing Maximal Independent Sets of
Hypergraphs in Parallel"* (Bercea, Goyal, Harris, Srinivasan; SPAA 2014).

The paper is a theory paper: its evaluation is a set of theorems, lemmas
and analysis-level inequalities rather than empirical tables.  Each section
below states the paper's claim, what this repository measures, and the
regenerated table.  Regenerate this file with::

    python scripts/make_experiments_report.py --scale {scale} --seed {seed}

or run any single experiment through its benchmark::

    pytest benchmarks/bench_eNN_*.py --benchmark-only

**Reading guide.**  Absolute constants are not expected to match (our
substrate is an EREW-PRAM *cost model*, not the authors' idealised
machine, and the paper's parameter formulas only engage at astronomic n —
see E9).  What must match, and does, is the *shape* of every claim:
who wins, what is bounded by what, which inequalities flip and where.

Generated: {date} · scale = {scale} · seed = {seed} · total runtime {elapsed:.1f}s

"""


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["quick", "full"], default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    )
    args = parser.parse_args()

    t0 = time.time()
    sections = []
    for eid in sorted(EXPERIMENTS, key=lambda e: int(e[1:])):
        print(f"running {eid} …", file=sys.stderr, flush=True)
        res = run_experiment(eid, scale=args.scale, seed=args.seed)
        block = [
            f"## {eid} — {res.title}",
            "",
            f"**Paper claim.** {PAPER_CLAIMS[eid]}",
            "",
            "**Measured.**",
            "",
            res.to_markdown().split("\n", 2)[2],  # drop the duplicate title
            "",
        ]
        sections.append("\n".join(block))
    elapsed = time.time() - t0
    header = HEADER.format(
        scale=args.scale,
        seed=args.seed,
        date=time.strftime("%Y-%m-%d"),
        elapsed=elapsed,
    )
    args.out.write_text(header + "\n".join(sections))
    print(f"wrote {args.out} ({elapsed:.1f}s)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
