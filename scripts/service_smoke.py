"""Service smoke: end-to-end check of the solve server for CI.

Boots ``repro serve`` as a real subprocess (unix socket, metrics
textfile), fires ~50 concurrent requests with planned duplicates through
the async load generator, and asserts the service invariants that matter:

* every request gets an ``ok`` response;
* duplicated cells are **not** solved per-request — the coalesce counter
  is positive and coalesced+cached covers every duplicate;
* every response's independent set is byte-identical to a direct
  in-process solve with the same ``(algorithm, seed)`` — serving through
  the batching/caching pipeline changes latency, never results;
* the OpenMetrics textfile the server writes on shutdown records the
  same story (``repro_service_coalesced_total`` > 0, cache counters
  present) — checked via :func:`repro.obs.export.parse_openmetrics`, the
  same parser operators would scrape with.

Artifacts (server log, metrics textfile, response dump) land in
``--out`` so a failing CI run uploads the full forensics.  Writes a
summary table to ``$GITHUB_STEP_SUMMARY`` when set.  Exit 0 on success.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [--out DIR]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core import beame_luby, sbl  # noqa: E402
from repro.generators import uniform_hypergraph  # noqa: E402
from repro.obs.export import parse_openmetrics  # noqa: E402
from repro.service import SolveClient, encode_instance, run_load  # noqa: E402

#: The request plan: UNIQUE cells, each duplicated DUPLICATES times.
UNIQUE = 10
DUPLICATES = 5
CONNECTIONS = 10

DIRECT = {"bl": beame_luby, "sbl": sbl}


def build_docs(instances) -> list[dict]:
    """~50 requests over 10 unique cells, duplicates spread across lanes."""
    docs = []
    for i in range(UNIQUE * DUPLICATES):
        u = i % UNIQUE  # round-robin across lanes => duplicates are concurrent
        algorithm = "bl" if u % 2 == 0 else "sbl"
        docs.append(
            {
                "op": "solve",
                "algorithm": algorithm,
                "seed": 100 + u,
                "instance": encode_instance(instances[u % len(instances)]),
                "id": f"smoke-{u}-{i}",
            }
        )
    return docs


def wait_for_server(socket_path: Path, proc: subprocess.Popen, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"server exited early (rc={proc.returncode})")
        if socket_path.exists():
            try:
                with SolveClient(socket_path, timeout=2.0) as client:
                    if client.ping():
                        return
            except OSError:
                pass
        time.sleep(0.1)
    raise RuntimeError(f"server not reachable within {timeout}s")


def step_summary(rows: list[tuple[str, str]]) -> None:
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a", encoding="utf-8") as fp:
        fp.write("### service smoke\n\n| check | value |\n|---|---|\n")
        for name, value in rows:
            fp.write(f"| {name} | {value} |\n")
        fp.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO / "service-smoke",
        help="artifact directory (server log, metrics, responses)",
    )
    args = parser.parse_args(argv)
    out = args.out
    out.mkdir(parents=True, exist_ok=True)
    socket_path = out / "svc.sock"
    metrics_path = out / "service.metrics.txt"
    log_path = out / "service.log"

    instances = [
        uniform_hypergraph(80, 160, 3, seed=21),
        uniform_hypergraph(120, 240, 3, seed=22),
    ]
    docs = build_docs(instances)

    env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
    with open(log_path, "w", encoding="utf-8") as log:
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--socket",
                str(socket_path),
                "--batch-window",
                "10",
                "--metrics-out",
                str(metrics_path),
            ],
            cwd=REPO,
            env=env,
            stdout=log,
            stderr=subprocess.STDOUT,
        )
    failures: list[str] = []
    report = None
    stats = None
    try:
        wait_for_server(socket_path, proc)
        report = asyncio.run(run_load(socket_path, docs, connections=CONNECTIONS))
        (out / "responses.json").write_text(
            json.dumps(report.responses, indent=2) + "\n", encoding="utf-8"
        )
        with SolveClient(socket_path, timeout=5.0) as client:
            # Sequential repeats of already-solved cells: guaranteed cache
            # hits (the load above may satisfy every duplicate by
            # coalescing alone, which would leave the cache path untested).
            repeats = []
            for u in range(3):
                repeats.append(
                    client.solve(
                        content_hash=instances[u % len(instances)].content_hash(),
                        algorithm="bl" if u % 2 == 0 else "sbl",
                        seed=100 + u,
                    )
                )
            if not all(r["cached"] for r in repeats):
                failures.append(
                    f"repeat requests not served from cache: "
                    f"{[r['cached'] for r in repeats]}"
                )
            stats = client.stats()
        (out / "stats.json").write_text(json.dumps(stats, indent=2) + "\n")
    except Exception as exc:  # noqa: BLE001 - smoke must report, not crash
        failures.append(f"load run failed: {type(exc).__name__}: {exc}")
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            failures.append("server did not shut down on SIGTERM")

    # -- invariant checks -------------------------------------------------
    if report is not None:
        total = UNIQUE * DUPLICATES
        if report.ok != total:
            failures.append(f"{total - report.ok}/{total} requests not ok")
        deduplicated = report.coalesced + report.cached
        expected_dupes = total - UNIQUE
        if report.coalesced == 0:
            failures.append("no request was coalesced (expected concurrent duplicates)")
        if deduplicated < expected_dupes:
            failures.append(
                f"only {deduplicated}/{expected_dupes} duplicates were "
                f"coalesced or cache-served — duplicates are being re-solved"
            )
        # Byte-identical to a direct solve with the same (algorithm, seed).
        by_hash = {H.content_hash(): H for H in instances}
        mismatches = 0
        for response in report.responses:
            if response.get("status") != "ok":
                continue
            H = by_hash[response["content_hash"]]
            direct = DIRECT[response["algorithm"]](H, seed=response["seed"])
            if response["independent_set"] != direct.independent_set.tolist():
                mismatches += 1
        if mismatches:
            failures.append(
                f"{mismatches} responses differ from direct solves — "
                f"serving must be bit-reproducible"
            )
        solved = stats["solved_cells"] if stats else None
        if stats is not None and stats["solved_cells"] > UNIQUE:
            failures.append(
                f"server solved {stats['solved_cells']} cells for "
                f"{UNIQUE} unique requests — coalescing is not deduplicating work"
            )
    else:
        solved = None

    if not metrics_path.exists():
        failures.append(f"server wrote no metrics textfile at {metrics_path}")
        coalesced_metric = hits_metric = None
    else:
        doc = parse_openmetrics(metrics_path.read_text(encoding="utf-8"))

        def metric(name: str) -> float | None:
            try:
                return doc.value(name, command="serve")
            except KeyError:
                return None

        coalesced_metric = metric("repro_service_coalesced_total")
        hits_metric = metric("repro_service_cache_hits_total")
        if not coalesced_metric or coalesced_metric <= 0:
            failures.append(
                f"repro_service_coalesced_total is {coalesced_metric!r} in the "
                f"exported metrics (expected > 0)"
            )
        if hits_metric is None:
            failures.append("repro_service_cache_hits_total missing from metrics")

    rows = [
        ("requests ok", f"{report.ok}/{report.total}" if report else "n/a"),
        ("coalesced", str(report.coalesced) if report else "n/a"),
        ("cache-served", str(report.cached) if report else "n/a"),
        ("cells solved", str(solved)),
        ("metric coalesced_total", str(coalesced_metric)),
        ("metric cache_hits_total", str(hits_metric)),
        ("p99 latency", f"{report.percentile_ns(0.99) / 1e6:.1f} ms" if report else "n/a"),
        ("verdict", "FAIL: " + "; ".join(failures) if failures else "pass"),
    ]
    step_summary(rows)
    for name, value in rows:
        print(f"{name:>24}: {value}")
    if failures:
        print(f"\nservice smoke FAILED ({len(failures)}):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        print(f"artifacts in {out}", file=sys.stderr)
        return 1
    print("\nservice smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
