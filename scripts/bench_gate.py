"""Perf gate: fail CI when a kernel median regresses past a threshold.

Re-runs the M1 kernel micro-benchmarks (via ``bench_smoke.run_benchmarks``)
and compares each fresh median against the committed baseline
``BENCH_m01.json``.  The gate fails when

    fresh_median / baseline_median > threshold   (default 1.25)

for any kernel, or when a baseline kernel disappeared from the benchmark
suite.  Kernels that are new (present fresh, absent from the baseline)
are reported but do not fail the gate — commit a refreshed baseline with
``scripts/bench_smoke.py`` to start tracking them.

Usage::

    PYTHONPATH=src python scripts/bench_gate.py
    PYTHONPATH=src python scripts/bench_gate.py --threshold 1.5
    PYTHONPATH=src python scripts/bench_gate.py --baseline BENCH_m01.json \
        --output fresh.json

Micro-benchmarks on shared CI runners are noisy; the default threshold
is deliberately loose (25%) so the gate only trips on real regressions —
an accidental O(n·m) loop, a dropped vectorisation — not scheduler
jitter.  If the gate flakes, re-run the job before suspecting the code.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from bench_smoke import REPO, run_benchmarks

DEFAULT_BASELINE = REPO / "BENCH_m01.json"
DEFAULT_THRESHOLD = 1.25


def compare(
    baseline: dict[str, int], fresh: dict[str, int], threshold: float
) -> tuple[list[str], list[str]]:
    """Return ``(lines, violations)`` for the kernel-by-kernel comparison."""
    lines: list[str] = []
    violations: list[str] = []
    names = sorted(set(baseline) | set(fresh))
    width = max(len(n) for n in names) if names else 1
    for name in names:
        base = baseline.get(name)
        cur = fresh.get(name)
        if base is None:
            lines.append(f"{name:<{width}}  NEW      {cur / 1e6:10.3f} ms (no baseline)")
            continue
        if cur is None:
            lines.append(f"{name:<{width}}  MISSING  baseline {base / 1e6:10.3f} ms")
            violations.append(f"{name}: kernel missing from fresh run")
            continue
        ratio = cur / base
        verdict = "ok"
        if ratio > threshold:
            verdict = "REGRESSED"
            violations.append(
                f"{name}: {base / 1e6:.3f} ms -> {cur / 1e6:.3f} ms "
                f"({ratio:.2f}x > {threshold:.2f}x)"
            )
        lines.append(
            f"{name:<{width}}  {base / 1e6:10.3f} ms -> {cur / 1e6:10.3f} ms  "
            f"{ratio:5.2f}x  {verdict}"
        )
    return lines, violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"committed medians file (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="max allowed fresh/baseline median ratio (default: %(default)s)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the fresh payload here (CI artifact / triage)",
    )
    args = parser.parse_args(argv)

    if args.threshold <= 0:
        print(f"threshold must be positive: {args.threshold}", file=sys.stderr)
        return 2
    if not args.baseline.exists():
        print(f"baseline not found: {args.baseline}", file=sys.stderr)
        return 2
    baseline_doc = json.loads(args.baseline.read_text())
    baseline = baseline_doc.get("medians_ns", {})
    if not baseline:
        print(f"baseline has no medians_ns: {args.baseline}", file=sys.stderr)
        return 2

    try:
        payload = run_benchmarks()
    except RuntimeError as exc:
        print(exc, file=sys.stderr)
        return 1
    if args.output is not None:
        args.output.write_text(json.dumps(payload, indent=2) + "\n")

    lines, violations = compare(baseline, payload["medians_ns"], args.threshold)
    print(f"perf gate vs {args.baseline.name} (threshold {args.threshold:.2f}x)")
    for line in lines:
        print(f"  {line}")
    if violations:
        print(f"\nFAIL: {len(violations)} kernel(s) regressed")
        for v in violations:
            print(f"  {v}")
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
