"""Perf gate: fail CI when a benchmark median regresses past a threshold.

Re-runs the benchmark suites (via ``bench_smoke``) and compares each fresh
median against the committed per-machine baselines — ``BENCH_m01.json``
for the solver kernels, ``BENCH_m02.json`` for campaign throughput.  The
gate fails an entry when **both** hold:

    fresh_median / baseline_median > threshold        (default 1.25)
    fresh_median - baseline_median > iqr_mult · IQR   (default 3.0×)

The second condition uses the baseline's recorded inter-quartile range:
an entry whose absolute change is within a few IQRs of its own run-to-run
spread is jitter, not a regression, no matter what the ratio says — this
is what keeps sub-millisecond kernels from tripping the gate on scheduler
noise.  Baselines without ``iqr_ns`` (or with a zero IQR) fall back to
the plain ratio test.  A baseline entry missing from the fresh run fails
the gate; entries that are new (present fresh, absent from the baseline)
are reported but do not fail — commit a refreshed baseline with
``scripts/bench_smoke.py`` to start tracking them.

Baselines record a normalized machine identity; the gate refuses to
compare against a baseline from a different machine (exit 2, or
``--allow-machine-mismatch`` to override) and warns when the baseline
predates machine stamping.  Every gate run appends its fresh medians to
``BENCH_history.jsonl``; when an m01 solver entry regresses, the entry is
re-run once with telemetry into ``forensics_m01_<entry>.jsonl`` so the
failure ships a span trace, not just a ratio.

Usage::

    PYTHONPATH=src python scripts/bench_gate.py                  # both suites
    PYTHONPATH=src python scripts/bench_gate.py --suite m01
    PYTHONPATH=src python scripts/bench_gate.py --threshold 1.5 \
        --output fresh.json

Micro-benchmarks on shared CI runners are noisy; the default threshold is
deliberately loose (25%) and IQR-slacked so the gate only trips on real
regressions — an accidental O(n·m) loop, a dropped vectorisation — not
scheduler jitter.  If the gate flakes, re-run the job before suspecting
the code.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from bench_smoke import (
    OUT_M02,
    OUT_M03,
    OUT_M04,
    REPO,
    append_history,
    machine_identity,
    run_benchmarks,
    run_benchmarks_m02,
    run_benchmarks_m03,
    run_benchmarks_m04,
)

DEFAULT_BASELINE = REPO / "BENCH_m01.json"
DEFAULT_THRESHOLD = 1.25
DEFAULT_IQR_MULT = 3.0

#: m01 entry -> (kernel, solver attr on repro.core, extra kwargs) for the
#: forensics re-run; non-solver entries (normalize, matvec, …) are skipped.
FORENSIC_SOLVERS: dict[str, tuple[str, str, dict]] = {
    "greedy": ("csr", "greedy_mis", {}),
    "kuw": ("csr", "karp_upfal_wigderson", {"trace": False}),
    "permutation": ("csr", "permutation_bl", {"trace": False}),
    "bl": ("csr", "beame_luby", {"trace": False}),
    "bl_bitset": ("bitset", "beame_luby", {"trace": False}),
    "bl_jit": ("jit", "beame_luby", {"trace": False}),
}


def check_machine(baseline_doc: dict, baseline_path: Path, suite: str) -> str | None:
    """Compare the baseline's recorded machine identity against this host.

    Returns an error string when the identities differ (medians from two
    machines are not comparable); ``None`` when they match or the baseline
    predates machine stamping (warn-and-proceed — refresh the baseline to
    start enforcing).
    """
    recorded = (baseline_doc.get("provenance") or {}).get("machine_id")
    if recorded is None:
        print(
            f"[{suite}] warning: baseline {baseline_path.name} has no machine "
            f"identity; cannot check comparability (refresh it with "
            f"scripts/bench_smoke.py)",
            file=sys.stderr,
        )
        return None
    current = machine_identity()
    if recorded != current:
        return (
            f"[{suite}] baseline {baseline_path.name} was recorded on a "
            f"different machine:\n"
            f"  baseline: {recorded}\n"
            f"  current:  {current}\n"
            f"medians are not comparable across machines — refresh the "
            f"baseline with scripts/bench_smoke.py on this machine, or pass "
            f"--allow-machine-mismatch to compare anyway"
        )
    return None


def write_forensics_trace(entry: str, out_path: Path) -> bool:
    """Re-run one regressed m01 solver entry with telemetry for triage.

    Executes the same (instance, kernel, solver) combination the benchmark
    measures, streaming spans to *out_path* — so a failing perf gate ships
    a trace that ``repro trace summary|diff|flame`` can dissect instead of
    a bare ratio.  Returns ``False`` (never raises) for non-solver entries
    or when the re-run fails; forensics must not mask the gate verdict.
    """
    spec = FORENSIC_SOLVERS.get(entry)
    if spec is None:
        return False
    kernel, fn_name, kwargs = spec
    try:
        from repro import core
        from repro.generators import uniform_hypergraph
        from repro.kernels import use_kernel
        from repro.obs import JsonlSink, Tracer, isolated_registry, use_tracer

        fn = getattr(core, fn_name)
        # The m01 suite's fixed instance (benchmarks/bench_m01_solver_kernels.py).
        H = uniform_hypergraph(400, 800, 3, seed=7)
        with isolated_registry():
            tracer = Tracer(JsonlSink(out_path))
            try:
                tracer.emit(
                    "run", command="bench-forensics", entry=entry, kernel=kernel
                )
                with use_tracer(tracer), use_kernel(kernel):
                    fn(H, seed=1, **kwargs)
                tracer.flush_metrics()
            finally:
                tracer.close()
        return True
    except Exception as exc:  # noqa: BLE001 - forensics is best-effort
        print(f"forensics re-run failed for {entry}: {exc}", file=sys.stderr)
        return False


def compare(
    baseline: dict[str, int],
    fresh: dict[str, int],
    threshold: float,
    *,
    baseline_iqr: dict[str, int] | None = None,
    iqr_mult: float = DEFAULT_IQR_MULT,
) -> tuple[list[str], list[str]]:
    """Return ``(lines, violations)`` for the entry-by-entry comparison.

    ``baseline_iqr`` maps entry name to the baseline's IQR in ns; when an
    entry has a positive IQR, a ratio over *threshold* only counts as a
    violation if the absolute increase also exceeds ``iqr_mult`` IQRs.
    """
    iqr_map = baseline_iqr or {}
    lines: list[str] = []
    violations: list[str] = []
    names = sorted(set(baseline) | set(fresh))
    width = max(len(n) for n in names) if names else 1
    for name in names:
        base = baseline.get(name)
        cur = fresh.get(name)
        if base is None:
            lines.append(f"{name:<{width}}  NEW      {cur / 1e6:10.3f} ms (no baseline)")
            continue
        if cur is None:
            lines.append(f"{name:<{width}}  MISSING  baseline {base / 1e6:10.3f} ms")
            violations.append(f"{name}: entry missing from fresh run")
            continue
        ratio = cur / base
        verdict = "ok"
        if ratio > threshold:
            iqr = iqr_map.get(name, 0) or 0
            slack = iqr_mult * iqr
            if iqr > 0 and (cur - base) <= slack:
                verdict = "ok (within noise)"
            else:
                verdict = "REGRESSED"
                violations.append(
                    f"{name}: {base / 1e6:.3f} ms -> {cur / 1e6:.3f} ms "
                    f"({ratio:.2f}x > {threshold:.2f}x"
                    + (
                        f", +{(cur - base) / 1e6:.3f} ms > "
                        f"{iqr_mult:g}·IQR {slack / 1e6:.3f} ms)"
                        if iqr > 0
                        else ")"
                    )
                )
        lines.append(
            f"{name:<{width}}  {base / 1e6:10.3f} ms -> {cur / 1e6:10.3f} ms  "
            f"{ratio:5.2f}x  {verdict}"
        )
    return lines, violations


def _gate_suite(
    suite: str,
    baseline_path: Path,
    threshold: float,
    iqr_mult: float,
    *,
    allow_machine_mismatch: bool = False,
    forensics_dir: Path | None = None,
) -> tuple[dict | None, int]:
    """Run one suite's gate; returns ``(fresh_payload, exit_code)``."""
    if not baseline_path.exists():
        print(f"baseline not found: {baseline_path}", file=sys.stderr)
        return None, 2
    baseline_doc = json.loads(baseline_path.read_text())
    baseline = baseline_doc.get("medians_ns", {})
    if not baseline:
        print(f"baseline has no medians_ns: {baseline_path}", file=sys.stderr)
        return None, 2
    machine_error = check_machine(baseline_doc, baseline_path, suite)
    if machine_error is not None:
        if not allow_machine_mismatch:
            print(machine_error, file=sys.stderr)
            return None, 2
        print(
            f"[{suite}] warning: comparing across machines "
            f"(--allow-machine-mismatch)",
            file=sys.stderr,
        )

    runners = {
        "m01": run_benchmarks,
        "m02": run_benchmarks_m02,
        "m03": run_benchmarks_m03,
        "m04": run_benchmarks_m04,
    }
    try:
        payload = runners[suite]()
    except RuntimeError as exc:
        print(exc, file=sys.stderr)
        return None, 1
    append_history(suite, payload, kind="gate")

    lines, violations = compare(
        baseline,
        payload["medians_ns"],
        threshold,
        baseline_iqr=baseline_doc.get("iqr_ns"),
        iqr_mult=iqr_mult,
    )
    print(
        f"[{suite}] perf gate vs {baseline_path.name} "
        f"(threshold {threshold:.2f}x, noise slack {iqr_mult:g}·IQR)"
    )
    for line in lines:
        print(f"  {line}")
    if violations:
        print(f"\n[{suite}] FAIL: {len(violations)} entr(y/ies) regressed")
        for v in violations:
            print(f"  {v}")
        if suite == "m01" and forensics_dir is not None:
            forensics_dir.mkdir(parents=True, exist_ok=True)
            for v in violations:
                entry = v.split(":", 1)[0]
                out = forensics_dir / f"forensics_m01_{entry}.jsonl"
                if write_forensics_trace(entry, out):
                    print(
                        f"  forensics trace: {out} "
                        f"(inspect with 'repro trace summary')"
                    )
        return payload, 1
    print(f"[{suite}] perf gate passed\n")
    return payload, 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        choices=["m01", "m02", "m03", "m04", "all", "both"],
        default="all",
        help="which suite(s) to gate ('both' = m01+m02, kept for "
        "compatibility; default: all)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="override the baseline file (single-suite runs only)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="max allowed fresh/baseline median ratio (default: %(default)s)",
    )
    parser.add_argument(
        "--iqr-mult",
        type=float,
        default=DEFAULT_IQR_MULT,
        help="noise slack: absolute increase must exceed this many baseline "
        "IQRs to count as a regression (default: %(default)s)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the fresh payload(s) here (CI artifact / triage)",
    )
    parser.add_argument(
        "--allow-machine-mismatch",
        action="store_true",
        help="compare even when the baseline was recorded on a different "
        "machine (medians are NOT comparable across machines; escape "
        "hatch for triage only)",
    )
    parser.add_argument(
        "--forensics-dir",
        type=Path,
        default=REPO,
        help="where failing m01 entries drop their telemetry traces "
        "(forensics_m01_<entry>.jsonl; default: repo root)",
    )
    args = parser.parse_args(argv)

    if args.threshold <= 0:
        print(f"threshold must be positive: {args.threshold}", file=sys.stderr)
        return 2
    if args.suite == "all":
        suites = ["m01", "m02", "m03", "m04"]
    elif args.suite == "both":
        suites = ["m01", "m02"]
    else:
        suites = [args.suite]
    if args.baseline is not None and len(suites) > 1:
        print("--baseline requires a single --suite", file=sys.stderr)
        return 2

    default_baselines = {
        "m01": DEFAULT_BASELINE,
        "m02": OUT_M02,
        "m03": OUT_M03,
        "m04": OUT_M04,
    }
    fresh: dict[str, dict] = {}
    rc = 0
    for suite in suites:
        baseline_path = args.baseline or default_baselines[suite]
        payload, suite_rc = _gate_suite(
            suite,
            baseline_path,
            args.threshold,
            args.iqr_mult,
            allow_machine_mismatch=args.allow_machine_mismatch,
            forensics_dir=args.forensics_dir,
        )
        if payload is not None:
            fresh[suite] = payload
        rc = max(rc, suite_rc)

    if args.output is not None and fresh:
        doc = next(iter(fresh.values())) if len(fresh) == 1 else fresh
        args.output.write_text(json.dumps(doc, indent=2) + "\n")
    if rc == 0:
        print("perf gate passed")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
