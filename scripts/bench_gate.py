"""Perf gate: fail CI when a benchmark median regresses past a threshold.

Re-runs the benchmark suites (via ``bench_smoke``) and compares each fresh
median against the committed per-machine baselines — ``BENCH_m01.json``
for the solver kernels, ``BENCH_m02.json`` for campaign throughput.  The
gate fails an entry when **both** hold:

    fresh_median / baseline_median > threshold        (default 1.25)
    fresh_median - baseline_median > iqr_mult · IQR   (default 3.0×)

The second condition uses the baseline's recorded inter-quartile range:
an entry whose absolute change is within a few IQRs of its own run-to-run
spread is jitter, not a regression, no matter what the ratio says — this
is what keeps sub-millisecond kernels from tripping the gate on scheduler
noise.  Baselines without ``iqr_ns`` (or with a zero IQR) fall back to
the plain ratio test.  A baseline entry missing from the fresh run fails
the gate; entries that are new (present fresh, absent from the baseline)
are reported but do not fail — commit a refreshed baseline with
``scripts/bench_smoke.py`` to start tracking them.

Usage::

    PYTHONPATH=src python scripts/bench_gate.py                  # both suites
    PYTHONPATH=src python scripts/bench_gate.py --suite m01
    PYTHONPATH=src python scripts/bench_gate.py --threshold 1.5 \
        --output fresh.json

Micro-benchmarks on shared CI runners are noisy; the default threshold is
deliberately loose (25%) and IQR-slacked so the gate only trips on real
regressions — an accidental O(n·m) loop, a dropped vectorisation — not
scheduler jitter.  If the gate flakes, re-run the job before suspecting
the code.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from bench_smoke import OUT_M02, REPO, run_benchmarks, run_benchmarks_m02

DEFAULT_BASELINE = REPO / "BENCH_m01.json"
DEFAULT_THRESHOLD = 1.25
DEFAULT_IQR_MULT = 3.0


def compare(
    baseline: dict[str, int],
    fresh: dict[str, int],
    threshold: float,
    *,
    baseline_iqr: dict[str, int] | None = None,
    iqr_mult: float = DEFAULT_IQR_MULT,
) -> tuple[list[str], list[str]]:
    """Return ``(lines, violations)`` for the entry-by-entry comparison.

    ``baseline_iqr`` maps entry name to the baseline's IQR in ns; when an
    entry has a positive IQR, a ratio over *threshold* only counts as a
    violation if the absolute increase also exceeds ``iqr_mult`` IQRs.
    """
    iqr_map = baseline_iqr or {}
    lines: list[str] = []
    violations: list[str] = []
    names = sorted(set(baseline) | set(fresh))
    width = max(len(n) for n in names) if names else 1
    for name in names:
        base = baseline.get(name)
        cur = fresh.get(name)
        if base is None:
            lines.append(f"{name:<{width}}  NEW      {cur / 1e6:10.3f} ms (no baseline)")
            continue
        if cur is None:
            lines.append(f"{name:<{width}}  MISSING  baseline {base / 1e6:10.3f} ms")
            violations.append(f"{name}: entry missing from fresh run")
            continue
        ratio = cur / base
        verdict = "ok"
        if ratio > threshold:
            iqr = iqr_map.get(name, 0) or 0
            slack = iqr_mult * iqr
            if iqr > 0 and (cur - base) <= slack:
                verdict = "ok (within noise)"
            else:
                verdict = "REGRESSED"
                violations.append(
                    f"{name}: {base / 1e6:.3f} ms -> {cur / 1e6:.3f} ms "
                    f"({ratio:.2f}x > {threshold:.2f}x"
                    + (
                        f", +{(cur - base) / 1e6:.3f} ms > "
                        f"{iqr_mult:g}·IQR {slack / 1e6:.3f} ms)"
                        if iqr > 0
                        else ")"
                    )
                )
        lines.append(
            f"{name:<{width}}  {base / 1e6:10.3f} ms -> {cur / 1e6:10.3f} ms  "
            f"{ratio:5.2f}x  {verdict}"
        )
    return lines, violations


def _gate_suite(
    suite: str,
    baseline_path: Path,
    threshold: float,
    iqr_mult: float,
) -> tuple[dict | None, int]:
    """Run one suite's gate; returns ``(fresh_payload, exit_code)``."""
    if not baseline_path.exists():
        print(f"baseline not found: {baseline_path}", file=sys.stderr)
        return None, 2
    baseline_doc = json.loads(baseline_path.read_text())
    baseline = baseline_doc.get("medians_ns", {})
    if not baseline:
        print(f"baseline has no medians_ns: {baseline_path}", file=sys.stderr)
        return None, 2

    try:
        payload = run_benchmarks() if suite == "m01" else run_benchmarks_m02()
    except RuntimeError as exc:
        print(exc, file=sys.stderr)
        return None, 1

    lines, violations = compare(
        baseline,
        payload["medians_ns"],
        threshold,
        baseline_iqr=baseline_doc.get("iqr_ns"),
        iqr_mult=iqr_mult,
    )
    print(
        f"[{suite}] perf gate vs {baseline_path.name} "
        f"(threshold {threshold:.2f}x, noise slack {iqr_mult:g}·IQR)"
    )
    for line in lines:
        print(f"  {line}")
    if violations:
        print(f"\n[{suite}] FAIL: {len(violations)} entr(y/ies) regressed")
        for v in violations:
            print(f"  {v}")
        return payload, 1
    print(f"[{suite}] perf gate passed\n")
    return payload, 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        choices=["m01", "m02", "both"],
        default="both",
        help="which suite(s) to gate (default: both)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="override the baseline file (single-suite runs only)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="max allowed fresh/baseline median ratio (default: %(default)s)",
    )
    parser.add_argument(
        "--iqr-mult",
        type=float,
        default=DEFAULT_IQR_MULT,
        help="noise slack: absolute increase must exceed this many baseline "
        "IQRs to count as a regression (default: %(default)s)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the fresh payload(s) here (CI artifact / triage)",
    )
    args = parser.parse_args(argv)

    if args.threshold <= 0:
        print(f"threshold must be positive: {args.threshold}", file=sys.stderr)
        return 2
    suites = ["m01", "m02"] if args.suite == "both" else [args.suite]
    if args.baseline is not None and len(suites) > 1:
        print("--baseline requires --suite m01 or m02", file=sys.stderr)
        return 2

    default_baselines = {"m01": DEFAULT_BASELINE, "m02": OUT_M02}
    fresh: dict[str, dict] = {}
    rc = 0
    for suite in suites:
        baseline_path = args.baseline or default_baselines[suite]
        payload, suite_rc = _gate_suite(suite, baseline_path, args.threshold, args.iqr_mult)
        if payload is not None:
            fresh[suite] = payload
        rc = max(rc, suite_rc)

    if args.output is not None and fresh:
        doc = next(iter(fresh.values())) if len(fresh) == 1 else fresh
        args.output.write_text(json.dumps(doc, indent=2) + "\n")
    if rc == 0:
        print("perf gate passed")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
